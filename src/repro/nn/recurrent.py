"""Recurrent layers: LSTM cell, unrolled LSTM, and bidirectional LSTM."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.functional import sigmoid as _sigmoid
from repro.nn.functional import sigmoid_ as _sigmoid_
from repro.nn.fused import add_matmul_grad, add_sum_grad
from repro.nn.initializers import orthogonal, xavier_uniform
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, as_tensor, concatenate, stack
from repro.utils.rng import as_random_state


class LSTMCell(Module):
    """A single LSTM step.

    The four gate transformations are fused into one matrix multiplication for
    both the input-to-hidden and hidden-to-hidden paths.  Gate order within the
    fused matrices is ``[input, forget, cell, output]``.
    """

    def __init__(self, input_size: int, hidden_size: int, seed=None, forget_bias: float = 1.0):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        rng = as_random_state(seed)
        self.input_size = input_size
        self.hidden_size = hidden_size

        self.weight_input = Parameter(
            xavier_uniform((input_size, 4 * hidden_size), rng), name="weight_input"
        )
        self.weight_hidden = Parameter(
            orthogonal((hidden_size, 4 * hidden_size), rng), name="weight_hidden"
        )
        bias = np.zeros(4 * hidden_size)
        # A positive forget-gate bias keeps early gradients flowing through time.
        bias[hidden_size : 2 * hidden_size] = forget_bias
        self.bias = Parameter(bias, name="bias")

    def forward(
        self, inputs, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tensor]:
        """Advance one timestep.

        Parameters
        ----------
        inputs:
            Tensor of shape ``(batch, input_size)``.
        state:
            Tuple ``(hidden, cell)`` each of shape ``(batch, hidden_size)``.
        """
        inputs = as_tensor(inputs)
        hidden, cell = state
        gates = inputs @ self.weight_input + hidden @ self.weight_hidden + self.bias
        size = self.hidden_size
        input_gate = gates[:, 0:size].sigmoid()
        forget_gate = gates[:, size : 2 * size].sigmoid()
        candidate = gates[:, 2 * size : 3 * size].tanh()
        output_gate = gates[:, 3 * size : 4 * size].sigmoid()

        new_cell = forget_gate * cell + input_gate * candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell

    def fast_step(
        self,
        input_projection: np.ndarray,
        hidden: np.ndarray,
        cell: np.ndarray,
        gates_buffer: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Graph-free LSTM step on raw numpy arrays.

        ``input_projection`` is the precomputed ``x_t @ weight_input`` row
        block (the input projection for every timestep is fused into one
        matrix multiplication by :meth:`LSTM.fast_forward`); ``gates_buffer``
        is a reusable ``(batch, 4 * hidden)`` scratch array so the recurrence
        allocates nothing per timestep beyond the new states.
        """
        np.matmul(hidden, self.weight_hidden.data, out=gates_buffer)
        gates_buffer += input_projection
        gates_buffer += self.bias.data
        size = self.hidden_size
        input_gate = _sigmoid(gates_buffer[:, 0:size])
        forget_gate = _sigmoid(gates_buffer[:, size : 2 * size])
        candidate = np.tanh(gates_buffer[:, 2 * size : 3 * size])
        output_gate = _sigmoid(gates_buffer[:, 3 * size : 4 * size])

        new_cell = forget_gate * cell + input_gate * candidate
        new_hidden = output_gate * np.tanh(new_cell)
        return new_hidden, new_cell

    def step(self, inputs: np.ndarray, state: "LSTMStreamState") -> np.ndarray:
        """Advance a streaming state by one tick on raw ``(batch, input_size)`` samples.

        Equivalent to one iteration of :meth:`LSTM.fast_forward`: the sample is
        projected through the fused input matrix once and the recurrence runs
        graph-free on the cached ``(hidden, cell)`` pair, so feeding a sequence
        tick-by-tick reproduces the offline unrolled forward within 1e-10.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        projection = inputs @ self.weight_input.data
        state.hidden, state.cell = self.fast_step(
            projection, state.hidden, state.cell, state.gates_buffer
        )
        state.ticks += 1
        return state.hidden

    def initial_state(self, batch_size: int) -> Tuple[Tensor, Tensor]:
        """Zero-valued hidden and cell state for a batch."""
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class LSTMStreamState:
    """Incremental ``(hidden, cell)`` state for tick-by-tick LSTM inference.

    Holds exactly one hidden/cell pair per stream plus a reusable gate scratch
    buffer, so advancing a tick allocates nothing that grows with the stream
    length — O(1) memory per tick per stream.
    """

    __slots__ = ("hidden", "cell", "gates_buffer", "ticks")

    def __init__(self, batch_size: int, hidden_size: int):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.hidden = np.zeros((batch_size, hidden_size))
        self.cell = np.zeros((batch_size, hidden_size))
        self.gates_buffer = np.empty((batch_size, 4 * hidden_size))
        self.ticks = 0

    @property
    def batch_size(self) -> int:
        return self.hidden.shape[0]

    def reset(self) -> None:
        """Return every stream to the zero state."""
        self.hidden[:] = 0.0
        self.cell[:] = 0.0
        self.ticks = 0


class LSTM(Module):
    """An LSTM layer unrolled over a full sequence.

    Parameters
    ----------
    input_size:
        Number of features per timestep.
    hidden_size:
        Width of the hidden state.
    return_sequences:
        When True the layer outputs the hidden state at every timestep
        (``(batch, time, hidden)``); otherwise only the final hidden state
        (``(batch, hidden)``).
    reverse:
        Process the sequence from last timestep to first (used by
        :class:`BiLSTM`).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        return_sequences: bool = False,
        reverse: bool = False,
        seed=None,
    ):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, seed=seed)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences
        self.reverse = reverse

    def forward(self, inputs, initial_state: Optional[Tuple[Tensor, Tensor]] = None) -> Tensor:
        inputs = as_tensor(inputs)
        if inputs.ndim != 3:
            raise ValueError(
                f"LSTM expects inputs of shape (batch, time, features), got {inputs.shape}"
            )
        batch_size, timesteps, _ = inputs.shape
        state = initial_state or self.cell.initial_state(batch_size)
        hidden, cell = state

        time_order = range(timesteps - 1, -1, -1) if self.reverse else range(timesteps)
        outputs = []
        for step in time_order:
            step_input = inputs[:, step, :]
            hidden, cell = self.cell(step_input, (hidden, cell))
            outputs.append(hidden)

        if not self.return_sequences:
            return hidden
        if self.reverse:
            outputs = outputs[::-1]
        return stack(outputs, axis=1)

    def fast_forward(self, inputs: np.ndarray) -> np.ndarray:
        """Graph-free unrolled forward.

        The input-to-hidden projection of *all* timesteps is fused into one
        ``(batch * time, features) @ (features, 4 * hidden)`` matrix
        multiplication, and the per-step recurrence reuses a single gate
        scratch buffer — no :class:`Tensor` nodes are allocated anywhere.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3:
            raise ValueError(
                f"LSTM expects inputs of shape (batch, time, features), got {inputs.shape}"
            )
        batch_size, timesteps, features = inputs.shape
        size = self.hidden_size
        projections = (
            inputs.reshape(batch_size * timesteps, features) @ self.cell.weight_input.data
        ).reshape(batch_size, timesteps, 4 * size)

        hidden = np.zeros((batch_size, size))
        cell_state = np.zeros((batch_size, size))
        gates_buffer = np.empty((batch_size, 4 * size))
        sequence = (
            np.empty((batch_size, timesteps, size)) if self.return_sequences else None
        )

        time_order = range(timesteps - 1, -1, -1) if self.reverse else range(timesteps)
        for step in time_order:
            hidden, cell_state = self.cell.fast_step(
                projections[:, step, :], hidden, cell_state, gates_buffer
            )
            if sequence is not None:
                sequence[:, step, :] = hidden
        return hidden if sequence is None else sequence

    # ----------------------------------------------------------------- training
    def fused_forward_train(self, inputs: np.ndarray):
        """Graph-free unrolled training forward; caches gate activations.

        Same fused input projection as :meth:`fast_forward` (one
        ``(time * batch, features) @ (features, 4 * hidden)`` matmul), but
        every per-step gate activation, previous cell state, and hidden state
        is saved so :meth:`fused_backward_train` can run the full truncated
        BPTT analytically.  Caches are **time-major** — ``cache[name][step]``
        is a contiguous ``(batch, ·)`` block — and the gate nonlinearities
        are applied in place inside one ``(time, batch, 4 * hidden)`` array,
        so a step's inner loop allocates almost nothing.  A ``reverse`` layer
        flips the sequence into processing order once up front —
        bit-identical arithmetic to iterating the timesteps backwards.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3:
            raise ValueError(
                f"LSTM expects inputs of shape (batch, time, features), got {inputs.shape}"
            )
        # Time-major processing order: [::-1] first for reverse layers.
        time_major = inputs.transpose(1, 0, 2)
        if self.reverse:
            time_major = time_major[::-1]
        time_major = np.ascontiguousarray(time_major)
        timesteps, batch_size, features = time_major.shape
        size = self.hidden_size
        cell = self.cell
        weight_hidden = cell.weight_hidden.data
        bias = cell.bias.data

        # One fused input projection (+ one vectorized bias add for every
        # timestep at once); the per-step recurrence then activates the gates
        # in place on this array (it doubles as the gate cache).
        gates_seq = (
            time_major.reshape(timesteps * batch_size, features) @ cell.weight_input.data
        ).reshape(timesteps, batch_size, 4 * size)
        gates_seq += bias
        hidden = np.zeros((batch_size, size))
        cell_state = np.zeros((batch_size, size))
        hidden_seq = np.empty((timesteps, batch_size, size))
        prev_cells = np.empty((timesteps, batch_size, size))
        tanh_cells = np.empty((timesteps, batch_size, size))
        for step in range(timesteps):
            gates = gates_seq[step]
            gates += hidden @ weight_hidden
            # Gate order [i, f, g, o]: sigmoid the adjacent i/f block in one
            # call, tanh the candidate, sigmoid the output gate — in place,
            # bitwise-identical to the elementwise Tensor ops.
            i_f = _sigmoid_(gates[:, 0 : 2 * size])
            i = i_f[:, 0:size]
            f = i_f[:, size:]
            g = gates[:, 2 * size : 3 * size]
            np.tanh(g, out=g)
            o = _sigmoid_(gates[:, 3 * size : 4 * size])
            prev_cells[step] = cell_state
            np.multiply(f, cell_state, out=cell_state)
            cell_state += i * g
            tanh_c = np.tanh(cell_state, out=tanh_cells[step])
            hidden = np.multiply(o, tanh_c, out=hidden_seq[step])

        cache = {
            "inputs": time_major,  # processing order (flipped for reverse layers)
            "gates": gates_seq,  # activated [i, f, g, o] blocks per step
            "hidden_seq": hidden_seq,
            "prev_cells": prev_cells,
            "tanh_cells": tanh_cells,
        }
        if not self.return_sequences:
            # `hidden` aliases hidden_seq[-1]; copy so downstream in-place
            # consumers can never corrupt the cache.
            return hidden.copy(), cache
        output = hidden_seq[::-1] if self.reverse else hidden_seq
        return np.ascontiguousarray(output.transpose(1, 0, 2)), cache

    def fused_backward_train(self, grad_output: np.ndarray, cache) -> np.ndarray:
        """Full truncated BPTT with weight gradients (hand-written).

        The per-step backward mirrors the autodiff gate math
        operation-for-operation (see ``SequenceGenerator.inversion_grad`` for
        the latent-only precedent), writing each step's four gate-gradient
        blocks directly into a time-major ``(time, batch, 4 * hidden)``
        stack.  The weight gradients are then fused into three calls —
        ``dWi = x.T @ d_gates``, ``dWh = h_prev.T @ d_gates``, and the bias
        row-sum — instead of one small matmul per timestep; frozen parameters
        skip their matmuls entirely.  Returns the gradient with respect to
        the layer inputs (caller time order).
        """
        grad_output = np.asarray(grad_output, dtype=np.float64)
        time_major = cache["inputs"]
        gates_seq = cache["gates"]
        hidden_seq = cache["hidden_seq"]
        tanh_cells = cache["tanh_cells"]
        prev_cells = cache["prev_cells"]
        timesteps, batch_size, features = time_major.shape
        size = self.hidden_size
        cell = self.cell
        weight_hidden = cell.weight_hidden.data

        if self.return_sequences:
            d_hidden_seq = grad_output.transpose(1, 0, 2)
            if self.reverse:
                d_hidden_seq = d_hidden_seq[::-1]
            d_hidden_seq = np.ascontiguousarray(d_hidden_seq)
            d_hidden = np.zeros((batch_size, size))
        else:
            # Sequence-to-one: the upstream gradient seeds only the final
            # processed step's hidden state.
            d_hidden_seq = None
            d_hidden = grad_output
        # The gate-derivative products are recurrence-independent, so they
        # vectorize across ALL timesteps in five big elementwise passes; the
        # sequential loop below then multiplies the running dc/dh into the
        # per-step slices — a handful of kernels per step instead of ~20.
        gate_i = gates_seq[:, :, 0:size]
        gate_f = gates_seq[:, :, size : 2 * size]
        gate_g = gates_seq[:, :, 2 * size : 3 * size]
        gate_o = gates_seq[:, :, 3 * size : 4 * size]
        cell_factor = gate_o * (1.0 - tanh_cells**2)  # dh * this -> dc
        input_factor = gate_g * (gate_i * (1.0 - gate_i))  # dc * this -> i block
        forget_factor = prev_cells * (gate_f * (1.0 - gate_f))  # -> f block
        candidate_factor = gate_i * (1.0 - gate_g**2)  # -> g block
        output_factor = tanh_cells * (gate_o * (1.0 - gate_o))  # dh * this -> o block

        d_cell = np.zeros((batch_size, size))
        d_projections = np.empty((timesteps, batch_size, 4 * size))
        for step in range(timesteps - 1, -1, -1):
            dh = d_hidden if d_hidden_seq is None else d_hidden_seq[step] + d_hidden
            dc = d_cell + dh * cell_factor[step]
            d_projection = d_projections[step]
            np.multiply(dc, input_factor[step], out=d_projection[:, 0:size])
            np.multiply(dc, forget_factor[step], out=d_projection[:, size : 2 * size])
            np.multiply(dc, candidate_factor[step], out=d_projection[:, 2 * size : 3 * size])
            np.multiply(dh, output_factor[step], out=d_projection[:, 3 * size : 4 * size])
            d_cell = dc * gate_f[step]
            d_hidden = d_projection @ weight_hidden.T

        flat_d_projections = d_projections.reshape(timesteps * batch_size, 4 * size)
        buffers = self._fused_buffers()
        add_matmul_grad(
            cell.weight_input,
            buffers,
            "weight_input",
            time_major.reshape(timesteps * batch_size, features).T,
            flat_d_projections,
        )
        if cell.weight_hidden.requires_grad:
            # h_{t-1} per step, in processing order (h_{-1} is the zero state).
            hidden_prev = np.concatenate(
                [np.zeros((1, batch_size, size)), hidden_seq[:-1]], axis=0
            )
            add_matmul_grad(
                cell.weight_hidden,
                buffers,
                "weight_hidden",
                hidden_prev.reshape(timesteps * batch_size, size).T,
                flat_d_projections,
            )
        add_sum_grad(cell.bias, buffers, "bias", flat_d_projections, axis=0)

        d_inputs = (flat_d_projections @ cell.weight_input.data.T).reshape(
            timesteps, batch_size, features
        )
        if self.reverse:
            d_inputs = d_inputs[::-1]
        return np.ascontiguousarray(d_inputs.transpose(1, 0, 2))

    # ---------------------------------------------------------------- streaming
    def stream_state(self, batch_size: int = 1) -> LSTMStreamState:
        """Fresh incremental state for ``batch_size`` concurrent streams."""
        if self.reverse:
            raise ValueError(
                "a reverse LSTM consumes the sequence from its end and cannot be "
                "streamed tick-by-tick; stream it through BiLSTM.stream_state, "
                "which ring-buffers the window for the backward pass"
            )
        return LSTMStreamState(batch_size, self.hidden_size)

    def step(self, inputs: np.ndarray, state: LSTMStreamState) -> np.ndarray:
        """Advance every stream by one tick; returns the new hidden state.

        After ``t`` ticks the hidden state equals
        ``fast_forward(sequence[:, :t])`` (final hidden) within 1e-10 — the
        incremental twin of the offline unrolled forward, at O(1) work and
        memory per tick instead of O(t) recompute.
        """
        if self.reverse:
            raise ValueError("a reverse LSTM cannot be advanced tick-by-tick")
        return self.cell.step(inputs, state)


class BiLSTM(Module):
    """A bidirectional LSTM that concatenates forward and backward states.

    When ``return_sequences`` is False the output is the concatenation of the
    final forward hidden state and the final backward hidden state, matching
    the sequence-to-one forecasting architecture of Rubin-Falcone et al. used
    as the paper's target glucose model.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        return_sequences: bool = False,
        seed=None,
    ):
        super().__init__()
        rng = as_random_state(seed)
        forward_seed, backward_seed = rng.spawn(2)
        self.forward_layer = LSTM(
            input_size, hidden_size, return_sequences=return_sequences, seed=forward_seed
        )
        self.backward_layer = LSTM(
            input_size,
            hidden_size,
            return_sequences=return_sequences,
            reverse=True,
            seed=backward_seed,
        )
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences

    @property
    def output_size(self) -> int:
        return 2 * self.hidden_size

    def forward(self, inputs) -> Tensor:
        forward_out = self.forward_layer(inputs)
        backward_out = self.backward_layer(inputs)
        return concatenate([forward_out, backward_out], axis=-1)

    def fast_forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        forward_out = self.forward_layer.fast_forward(inputs)
        backward_out = self.backward_layer.fast_forward(inputs)
        return np.concatenate([forward_out, backward_out], axis=-1)

    # ----------------------------------------------------------------- training
    def fused_forward_train(self, inputs: np.ndarray):
        inputs = np.asarray(inputs, dtype=np.float64)
        forward_out, forward_cache = self.forward_layer.fused_forward_train(inputs)
        backward_out, backward_cache = self.backward_layer.fused_forward_train(inputs)
        output = np.concatenate([forward_out, backward_out], axis=-1)
        return output, (forward_cache, backward_cache)

    def fused_backward_train(self, grad_output: np.ndarray, cache) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float64)
        forward_cache, backward_cache = cache
        size = self.hidden_size
        # The concat backward routes each half to its direction; the input
        # gradient is the sum of both directions' contributions.
        d_forward = self.forward_layer.fused_backward_train(
            grad_output[..., :size], forward_cache
        )
        d_backward = self.backward_layer.fused_backward_train(
            grad_output[..., size:], backward_cache
        )
        return d_forward + d_backward

    # ---------------------------------------------------------------- streaming
    def stream_state(self, n_streams: int = 1, capacity: int = 1) -> "BiLSTMStreamState":
        """Ring-buffered state for sliding-window streaming over ``n_streams``.

        A bidirectional layer cannot carry ``(h, c)`` across a sliding window:
        both recurrences restart at the window boundary, and the boundary moves
        every tick.  What *can* be cached is the expensive, position-independent
        part — the fused input projection of each sample for both directions —
        so the state keeps a small ring of the last ``capacity`` projections
        per stream and :meth:`step` only pays one input matmul per new sample
        plus the window recurrences on preprojected rows.
        """
        if self.return_sequences:
            raise ValueError(
                "streaming BiLSTM state is defined for sequence-to-one layers "
                "(return_sequences=False); per-tick full sequences would not be O(1)"
            )
        return BiLSTMStreamState(n_streams, self.hidden_size, capacity)

    def step(
        self,
        samples: np.ndarray,
        state: "BiLSTMStreamState",
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Push one sample per selected stream and emit sliding-window outputs.

        Parameters
        ----------
        samples:
            ``(k, input_size)`` raw samples, one per selected stream.
        state:
            Stream state created by :meth:`stream_state`.
        rows:
            Stream (slot) indices receiving a sample this tick; defaults to
            ``arange(k)``.  Streams outside ``rows`` are untouched, which is
            how a scheduler serves sessions that miss a tick.

        Returns
        -------
        ``(k, 2 * hidden)`` outputs matching ``fast_forward`` on each stream's
        current window within 1e-10.  Rows whose ring is not yet full (the
        warm-up phase) are NaN.
        """
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 2 or samples.shape[1] != self.forward_layer.input_size:
            raise ValueError(
                f"samples must have shape (k, {self.forward_layer.input_size}), "
                f"got {samples.shape}"
            )
        if rows is None:
            rows = np.arange(len(samples))
        else:
            rows = np.asarray(rows, dtype=int)
            if len(rows) != len(samples):
                raise ValueError("rows and samples must have the same length")

        # One fused input projection per new sample and direction; every window
        # the sample participates in reuses these rows from the ring.
        cursors = state.cursor[rows]
        state.forward_proj[rows, cursors] = samples @ self.forward_layer.cell.weight_input.data
        state.backward_proj[rows, cursors] = samples @ self.backward_layer.cell.weight_input.data
        state.cursor[rows] = (cursors + 1) % state.capacity
        state.count[rows] = np.minimum(state.count[rows] + 1, state.capacity)

        size = self.hidden_size
        outputs = np.full((len(rows), 2 * size), np.nan)
        full_mask = state.count[rows] == state.capacity
        if not np.any(full_mask):
            return outputs
        full_rows = rows[full_mask]

        # Gather each stream's ring in window order (oldest -> newest); after
        # the write above, the oldest sample sits at the cursor position.
        order = (
            state.cursor[full_rows][:, None] + np.arange(state.capacity)[None, :]
        ) % state.capacity
        forward_windows = np.take_along_axis(
            state.forward_proj[full_rows], order[:, :, None], axis=1
        )
        backward_windows = np.take_along_axis(
            state.backward_proj[full_rows], order[:, :, None], axis=1
        )

        n_full = len(full_rows)
        gates = np.empty((n_full, 4 * size))
        hidden = np.zeros((n_full, size))
        cell_state = np.zeros((n_full, size))
        forward_cell = self.forward_layer.cell
        for step_index in range(state.capacity):
            hidden, cell_state = forward_cell.fast_step(
                forward_windows[:, step_index], hidden, cell_state, gates
            )
        forward_hidden = hidden

        hidden = np.zeros((n_full, size))
        cell_state = np.zeros((n_full, size))
        backward_cell = self.backward_layer.cell
        for step_index in range(state.capacity - 1, -1, -1):
            hidden, cell_state = backward_cell.fast_step(
                backward_windows[:, step_index], hidden, cell_state, gates
            )
        outputs[full_mask] = np.concatenate([forward_hidden, hidden], axis=1)
        return outputs

    def step_one(
        self, sample: np.ndarray, state: "BiLSTMStreamState", row: int = 0
    ) -> Optional[np.ndarray]:
        """Single-stream twin of :meth:`step` for one slot, minus the batch glue.

        Advances slot ``row`` with one ``(input_size,)`` sample and returns
        the ``(1, 2 * hidden)`` sliding-window output, or None while the
        slot's ring is still warming up.  The arithmetic is identical to
        :meth:`step` on a one-row batch (same matmul shapes, same ring
        ordering), so the outputs are bitwise-equal — only the per-call
        bookkeeping (row gathers, masks, NaN scatter) is skipped.  This is
        the serving scheduler's single-session fast path; inputs are assumed
        validated by the caller.
        """
        cursor = state.cursor[row]
        projected = sample[np.newaxis]
        state.forward_proj[row, cursor] = (
            projected @ self.forward_layer.cell.weight_input.data
        )
        state.backward_proj[row, cursor] = (
            projected @ self.backward_layer.cell.weight_input.data
        )
        state.cursor[row] = (cursor + 1) % state.capacity
        count = state.count[row] + 1
        if count <= state.capacity:
            state.count[row] = count
            if count < state.capacity:
                return None

        # Ring rows in window order (oldest sits at the post-write cursor).
        start = state.cursor[row]
        forward_ring = state.forward_proj[row]
        backward_ring = state.backward_proj[row]
        if start:
            forward_windows = np.concatenate(
                (forward_ring[start:], forward_ring[:start])
            )
            backward_windows = np.concatenate(
                (backward_ring[start:], backward_ring[:start])
            )
        else:
            forward_windows = forward_ring
            backward_windows = backward_ring

        size = self.hidden_size
        gates = np.empty((1, 4 * size))
        hidden = np.zeros((1, size))
        cell_state = np.zeros((1, size))
        forward_cell = self.forward_layer.cell
        for step_index in range(state.capacity):
            hidden, cell_state = forward_cell.fast_step(
                forward_windows[step_index : step_index + 1], hidden, cell_state, gates
            )
        forward_hidden = hidden

        hidden = np.zeros((1, size))
        cell_state = np.zeros((1, size))
        backward_cell = self.backward_layer.cell
        for step_index in range(state.capacity - 1, -1, -1):
            hidden, cell_state = backward_cell.fast_step(
                backward_windows[step_index : step_index + 1], hidden, cell_state, gates
            )
        return np.concatenate([forward_hidden, hidden], axis=1)


class BiLSTMStreamState:
    """Per-stream ring buffers of fused input projections for a BiLSTM.

    Memory is ``O(n_streams * capacity * hidden)`` and fixed for the lifetime
    of the state — advancing a tick writes one ring row per stream and never
    allocates anything proportional to the stream length.  Slots are
    independent: each has its own cursor and fill count, so streams may start,
    stop, and miss ticks independently (the serving scheduler relies on this).
    """

    __slots__ = ("capacity", "forward_proj", "backward_proj", "cursor", "count")

    def __init__(self, n_streams: int, hidden_size: int, capacity: int):
        if n_streams <= 0:
            raise ValueError("n_streams must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.forward_proj = np.zeros((n_streams, capacity, 4 * hidden_size))
        self.backward_proj = np.zeros((n_streams, capacity, 4 * hidden_size))
        self.cursor = np.zeros(n_streams, dtype=int)
        self.count = np.zeros(n_streams, dtype=int)

    @property
    def n_streams(self) -> int:
        return len(self.cursor)

    def grow(self, n_streams: int) -> None:
        """Extend the state with fresh (empty) slots up to ``n_streams``."""
        current = self.n_streams
        if n_streams <= current:
            return
        extra = n_streams - current
        pad = ((0, extra), (0, 0), (0, 0))
        self.forward_proj = np.pad(self.forward_proj, pad)
        self.backward_proj = np.pad(self.backward_proj, pad)
        self.cursor = np.concatenate([self.cursor, np.zeros(extra, dtype=int)])
        self.count = np.concatenate([self.count, np.zeros(extra, dtype=int)])

    def reset_slots(self, rows: np.ndarray) -> None:
        """Empty the rings of the given slots so they can be reused."""
        rows = np.asarray(rows, dtype=int)
        self.cursor[rows] = 0
        self.count[rows] = 0
