"""A small reverse-mode automatic differentiation engine on numpy arrays.

The :class:`Tensor` class wraps a numpy array and records the operations that
produced it.  Calling :meth:`Tensor.backward` on a scalar result propagates
gradients to every tensor created with ``requires_grad=True``.

The engine supports the operations needed by the rest of the library
(dense layers, LSTM cells, GAN losses): elementwise arithmetic with
broadcasting, matrix multiplication, reductions, common nonlinearities,
concatenation, stacking, slicing, and reshaping.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

# Global switch for graph construction.  When False (inside ``no_grad``),
# every operation produces a plain leaf tensor: no parents, no backward
# closures, no gradient bookkeeping.  Inference-only code paths use this to
# avoid the per-op allocation cost of the autodiff graph.
_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """True when operations record the autodiff graph (the default)."""
    return _GRAD_ENABLED


class no_grad:
    """Context manager that disables autodiff graph construction.

    Inside the context every tensor operation returns a graph-free result
    (``requires_grad=False``, no parents), so forward passes allocate no
    backward closures.  Nesting is supported; the previous state is restored
    on exit.  Can also be used as a decorator.

    >>> with no_grad():
    ...     prediction = model(inputs)  # no graph is recorded
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous

    def __call__(self, function: Callable) -> Callable:
        def wrapped(*args, **kwargs):
            with no_grad():
                return function(*args, **kwargs)

        wrapped.__name__ = getattr(function, "__name__", "wrapped")
        wrapped.__doc__ = function.__doc__
        return wrapped


def _unbroadcast(gradient: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``gradient`` over axes that were broadcast to reach ``gradient.shape``.

    When an operand of shape ``shape`` was broadcast during the forward pass,
    its gradient must be reduced back to ``shape``.
    """
    if gradient.shape == shape:
        return gradient
    # Sum over leading axes added by broadcasting.
    extra_dims = gradient.ndim - len(shape)
    if extra_dims > 0:
        gradient = gradient.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and gradient.shape[axis] != 1
    )
    if axes:
        gradient = gradient.sum(axis=axes, keepdims=True)
    return gradient.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff support."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        name: Optional[str] = None,
    ):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[], None]] = None
        self._parents: Tuple[Tensor, ...] = _parents
        self.name = name

    # ------------------------------------------------------------------ basics
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self, copy: bool = False) -> np.ndarray:
        """Return the tensor's values as a numpy array.

        .. warning::
            With ``copy=False`` (the default) this returns the tensor's
            **underlying buffer**, not a copy: mutating the returned array
            mutates the tensor (and anything else aliasing it), and the
            array may later be mutated by in-place parameter updates.  Pass
            ``copy=True`` — or use :meth:`detach_copy` — whenever the caller
            stores the result or hands it to code that may write to it.
        """
        return self.data.copy() if copy else self.data

    def detach_copy(self) -> np.ndarray:
        """Return an independent numpy copy of the values (never aliased).

        Equivalent to ``tensor.numpy(copy=True)``; the spelling makes the
        intent explicit at call sites that persist model outputs (e.g. attack
        code storing benign/adversarial windows).
        """
        return self.data.copy()

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------ graph helpers
    @staticmethod
    def _coerce(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make_child(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(parent.requires_grad for parent in parents)
        child = Tensor(data, requires_grad=requires, _parents=parents if requires else ())
        if requires:

            def _backward_closure() -> None:
                backward(child.grad)

            child._backward = _backward_closure
        return child

    def _accumulate(self, gradient: np.ndarray) -> None:
        if not self.requires_grad:
            return
        gradient = _unbroadcast(np.asarray(gradient, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = gradient.copy()
        else:
            self.grad = self.grad + gradient

    def backward(self, gradient: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        gradient:
            Upstream gradient; defaults to 1 for scalar tensors.
        """
        if gradient is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            gradient = np.ones_like(self.data)
        self.grad = np.asarray(gradient, dtype=np.float64).reshape(self.data.shape)

        ordered: List[Tensor] = []
        visited = set()

        def visit(node: Tensor) -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            ordered.append(node)

        visit(self)
        for node in reversed(ordered):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # --------------------------------------------------------------- arithmetic
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make_child(out_data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make_child(out_data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self.__add__(self._coerce(other).__neg__())

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make_child(out_data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data**2))

        return self._make_child(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make_child(out_data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return self._make_child(out_data, (self, other), backward)

    def matmul(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self.__matmul__(other)

    # --------------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(expanded, self.data.shape))

        return self._make_child(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------ nonlinearities
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make_child(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make_child(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self.__pow__(0.5)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make_child(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make_child(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make_child(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(mask, 1.0, negative_slope))

        return self._make_child(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make_child(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return self._make_child(out_data, (self,), backward)

    # -------------------------------------------------------------- shape ops
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return self._make_child(out_data, (self,), backward)

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)
        if axes is None:
            inverse_axes = None
        else:
            inverse_axes = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.transpose(grad, inverse_axes))

        return self._make_child(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make_child(out_data, (self,), backward)


# ---------------------------------------------------------------------- joiners
def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._coerce(tensor) for tensor in tensors]
    data = np.concatenate([tensor.data for tensor in tensors], axis=axis)
    sizes = [tensor.data.shape[axis] for tensor in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    requires = _GRAD_ENABLED and any(tensor.requires_grad for tensor in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors) if requires else ())
    if requires:

        def _backward() -> None:
            pieces = np.split(out.grad, boundaries, axis=axis)
            for tensor, piece in zip(tensors, pieces):
                tensor._accumulate(piece)

        out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [Tensor._coerce(tensor) for tensor in tensors]
    data = np.stack([tensor.data for tensor in tensors], axis=axis)
    requires = _GRAD_ENABLED and any(tensor.requires_grad for tensor in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors) if requires else ())
    if requires:

        def _backward() -> None:
            pieces = np.split(out.grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, pieces):
                tensor._accumulate(np.squeeze(piece, axis=axis))

        out._backward = _backward
    return out


def zeros(shape: Tuple[int, ...], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape: Tuple[int, ...], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def as_tensor(value: Union[Tensor, ArrayLike]) -> Tensor:
    """Coerce ``value`` into a (non-differentiable) tensor if needed."""
    return value if isinstance(value, Tensor) else Tensor(value)
