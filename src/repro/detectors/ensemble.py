"""A simple majority-vote ensemble over anomaly detectors.

Not part of the paper's evaluation, but a natural extension: the paper's
framework trains *any* static detector selectively, and combining detectors
it studies is the obvious next step.  Any :class:`AnomalyDetector` can join —
the ablation benchmarks vote the paper's three (kNN, OneClassSVM, MAD-GAN),
and the chaos suite adds an LSTM-VAE + HMM window ensemble whose members fail
in genuinely different ways (reconstruction likelihood vs state-sequence
likelihood; see ``docs/detectors.md``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.utils.validation import check_array


class VotingEnsembleDetector(AnomalyDetector):
    """Flag a window as malicious when at least ``min_votes`` members do."""

    name = "ensemble"

    def __init__(self, detectors: Sequence[AnomalyDetector], min_votes: Optional[int] = None):
        if not detectors:
            raise ValueError("the ensemble needs at least one detector")
        self.detectors: List[AnomalyDetector] = list(detectors)
        if min_votes is None:
            min_votes = len(self.detectors) // 2 + 1
        if not 1 <= min_votes <= len(self.detectors):
            raise ValueError("min_votes must be between 1 and the number of detectors")
        self.min_votes = int(min_votes)

    def fit(self, windows: np.ndarray, labels: Optional[np.ndarray] = None) -> "VotingEnsembleDetector":
        for detector in self.detectors:
            try:
                detector.fit(windows, labels)
            except ValueError:
                # Unsupervised members reject labels-only problems and vice
                # versa; fall back to benign-only fitting when possible.
                detector.fit(windows)
        return self

    # ------------------------------------------------------------- degradation
    def active_detectors(self, exclude: Optional[Sequence] = None) -> List[AnomalyDetector]:
        """The members still voting after dropping ``exclude``.

        ``exclude`` may hold member indices, names, or the detector objects
        themselves — whatever a health-aware caller has on hand when a
        member is quarantined or its stream degrades.
        """
        if not exclude:
            return self.detectors
        dropped = set()
        for item in exclude:
            if isinstance(item, (int, np.integer)):
                dropped.add(int(item))
            else:
                for index, detector in enumerate(self.detectors):
                    if detector is item or getattr(detector, "name", None) == item:
                        dropped.add(index)
        active = [d for i, d in enumerate(self.detectors) if i not in dropped]
        if not active:
            raise ValueError("cannot exclude every ensemble member")
        return active

    def effective_min_votes(self, n_active: int) -> int:
        """Vote threshold renormalized to the surviving member count.

        Preserves the configured vote *fraction*: with 2 of 3 members alive
        and ``min_votes=2`` the degraded ensemble still needs
        ``ceil(2 * 2/3) = 2`` votes, while a bare majority config (2-of-3)
        over 1 survivor degrades to 1-of-1 rather than an impossible 2.
        """
        if not 1 <= n_active <= len(self.detectors):
            raise ValueError("n_active must be between 1 and the number of detectors")
        fraction = self.min_votes / len(self.detectors)
        return max(1, int(np.ceil(fraction * n_active - 1e-12)))

    def scores(self, windows: np.ndarray, exclude: Optional[Sequence] = None) -> np.ndarray:
        check_array(windows, "windows", ndim=3, min_samples=1)
        active = self.active_detectors(exclude)
        votes = np.stack([detector.predict(windows) for detector in active])
        return votes.mean(axis=0)

    def predict(self, windows: np.ndarray, exclude: Optional[Sequence] = None) -> np.ndarray:
        """Majority vote; ``exclude`` drops degraded members and renormalizes.

        With ``exclude`` empty this is exactly the configured
        ``min_votes``-of-N vote; with members dropped the threshold shrinks
        proportionally (:meth:`effective_min_votes`) so one quarantined
        detector cannot silently veto the whole ensemble.
        """
        active = self.active_detectors(exclude)
        votes = np.stack([detector.predict(windows) for detector in active])
        return (votes.sum(axis=0) >= self.effective_min_votes(len(active))).astype(int)
