"""A simple majority-vote ensemble over anomaly detectors.

Not part of the paper's evaluation, but a natural extension: the paper's
framework trains *any* static detector selectively, and combining the three
detectors it studies is the obvious next step.  The ensemble is exercised by
the ablation benchmarks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.utils.validation import check_array


class VotingEnsembleDetector(AnomalyDetector):
    """Flag a window as malicious when at least ``min_votes`` members do."""

    name = "ensemble"

    def __init__(self, detectors: Sequence[AnomalyDetector], min_votes: Optional[int] = None):
        if not detectors:
            raise ValueError("the ensemble needs at least one detector")
        self.detectors: List[AnomalyDetector] = list(detectors)
        if min_votes is None:
            min_votes = len(self.detectors) // 2 + 1
        if not 1 <= min_votes <= len(self.detectors):
            raise ValueError("min_votes must be between 1 and the number of detectors")
        self.min_votes = int(min_votes)

    def fit(self, windows: np.ndarray, labels: Optional[np.ndarray] = None) -> "VotingEnsembleDetector":
        for detector in self.detectors:
            try:
                detector.fit(windows, labels)
            except ValueError:
                # Unsupervised members reject labels-only problems and vice
                # versa; fall back to benign-only fitting when possible.
                detector.fit(windows)
        return self

    def scores(self, windows: np.ndarray) -> np.ndarray:
        check_array(windows, "windows", ndim=3, min_samples=1)
        votes = np.stack([detector.predict(windows) for detector in self.detectors])
        return votes.mean(axis=0)

    def predict(self, windows: np.ndarray) -> np.ndarray:
        votes = np.stack([detector.predict(windows) for detector in self.detectors])
        return (votes.sum(axis=0) >= self.min_votes).astype(int)
