"""Common interface and helpers for anomaly detectors.

Every detector consumes feature windows of shape ``(n, history, features)``
(the same windows the forecaster sees) and produces:

* ``scores(windows)`` — a continuous anomaly score, larger = more anomalous,
* ``predict(windows)`` — binary labels, 1 = malicious/anomalous, 0 = benign.

Unsupervised detectors (OneClassSVM, MAD-GAN, distance-based kNN) are fit on
benign windows only and calibrate a score threshold on the benign training
distribution.  The supervised kNN classifier additionally accepts labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.dataset import flatten_windows
from repro.utils.timeseries import StandardScaler
from repro.utils.validation import check_array, check_fitted, check_probability


class AnomalyDetector:
    """Base class for anomaly detectors operating on feature windows."""

    #: Human-readable detector name used in experiment reports.
    name: str = "detector"

    def fit(self, windows: np.ndarray, labels: Optional[np.ndarray] = None) -> "AnomalyDetector":
        raise NotImplementedError

    def scores(self, windows: np.ndarray) -> np.ndarray:
        """Continuous anomaly scores (larger = more anomalous)."""
        raise NotImplementedError

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Binary predictions: 1 for anomalous/malicious, 0 for benign."""
        raise NotImplementedError

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _flatten(windows: np.ndarray) -> np.ndarray:
        windows = check_array(windows, "windows", ndim=3, min_samples=1)
        return flatten_windows(windows)


@dataclass
class ThresholdCalibrator:
    """Convert continuous anomaly scores into binary decisions.

    The threshold is the ``quantile``-th quantile of the benign training
    scores: a benign false-positive budget of ``1 - quantile`` is accepted in
    exchange for sensitivity to anomalous scores.
    """

    quantile: float = 0.95
    threshold_: Optional[float] = None

    def fit(self, benign_scores: np.ndarray) -> "ThresholdCalibrator":
        check_probability(self.quantile, "quantile")
        benign_scores = check_array(benign_scores, "benign_scores", ndim=1, allow_empty=False)
        self.threshold_ = float(np.quantile(benign_scores, self.quantile))
        return self

    def predict(self, scores: np.ndarray) -> np.ndarray:
        check_fitted(self, ("threshold_",))
        scores = check_array(scores, "scores", ndim=1)
        return (scores > self.threshold_).astype(int)


class ScaledDetectorMixin:
    """Mixin providing feature scaling of flattened windows."""

    def _fit_scaler(self, flat: np.ndarray) -> np.ndarray:
        self._scaler = StandardScaler().fit(flat)
        return self._scaler.transform(flat)

    def _apply_scaler(self, flat: np.ndarray) -> np.ndarray:
        if getattr(self, "_scaler", None) is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted")
        return self._scaler.transform(flat)
