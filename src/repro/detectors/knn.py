"""k-nearest-neighbour detectors.

The paper uses scikit-learn's ``KNeighborsClassifier`` with ``k=7``, uniform
weights, and the Minkowski metric with ``p=2`` (Appendix B).  This module
implements that classifier from scratch, plus an unsupervised distance-based
variant (mean distance to the k nearest benign neighbours) that needs no
malicious samples at training time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.detectors.base import AnomalyDetector, ScaledDetectorMixin, ThresholdCalibrator
from repro.utils.validation import check_array, check_consistent_length, check_fitted


def minkowski_distances(queries: np.ndarray, references: np.ndarray, p: float = 2.0) -> np.ndarray:
    """Pairwise Minkowski distances between query and reference row vectors."""
    queries = np.asarray(queries, dtype=np.float64)
    references = np.asarray(references, dtype=np.float64)
    if queries.ndim != 2 or references.ndim != 2:
        raise ValueError("queries and references must be 2-D")
    if queries.shape[1] != references.shape[1]:
        raise ValueError("queries and references must share the feature dimension")
    if p <= 0:
        raise ValueError("p must be positive")
    if p == 2.0:
        # Squared-expansion form is far faster for the Euclidean case.
        query_norms = np.sum(queries**2, axis=1)[:, np.newaxis]
        reference_norms = np.sum(references**2, axis=1)[np.newaxis, :]
        squared = query_norms + reference_norms - 2.0 * queries @ references.T
        return np.sqrt(np.maximum(squared, 0.0))
    differences = np.abs(queries[:, np.newaxis, :] - references[np.newaxis, :, :])
    return np.power(np.sum(differences**p, axis=2), 1.0 / p)


class KNNClassifierDetector(AnomalyDetector, ScaledDetectorMixin):
    """Supervised kNN malicious-sample classifier (the paper's configuration).

    Parameters mirror scikit-learn's ``KNeighborsClassifier`` defaults used in
    the paper: ``n_neighbors=7``, uniform weights, Minkowski ``p=2``.

    The anomaly score is the fraction of the k nearest training neighbours
    labelled malicious; ``predict`` applies the usual majority vote.
    """

    name = "kNN"

    def __init__(
        self,
        n_neighbors: int = 7,
        p: float = 2.0,
        weights: str = "uniform",
        batch_size: int = 512,
    ):
        if n_neighbors <= 0:
            raise ValueError("n_neighbors must be positive")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.n_neighbors = int(n_neighbors)
        self.p = float(p)
        self.weights = weights
        self.batch_size = int(batch_size)
        self._train_features: Optional[np.ndarray] = None
        self._train_labels: Optional[np.ndarray] = None

    def fit(self, windows: np.ndarray, labels: Optional[np.ndarray] = None) -> "KNNClassifierDetector":
        if labels is None:
            raise ValueError(
                "KNNClassifierDetector is supervised; provide labels (0 benign, 1 malicious)"
            )
        flat = self._flatten(windows)
        labels = check_array(labels, "labels", ndim=1)
        check_consistent_length(flat, labels)
        unique = set(np.unique(labels).tolist())
        if not unique <= {0.0, 1.0}:
            raise ValueError(f"labels must be binary 0/1, got {sorted(unique)}")
        self._train_features = self._fit_scaler(flat)
        self._train_labels = labels.astype(int)
        return self

    def _neighbor_votes(self, flat: np.ndarray) -> np.ndarray:
        check_fitted(self, ("_train_features",))
        scaled = self._apply_scaler(flat)
        k = min(self.n_neighbors, len(self._train_features))
        votes = np.empty(len(scaled))
        for start in range(0, len(scaled), self.batch_size):
            batch = scaled[start : start + self.batch_size]
            distances = minkowski_distances(batch, self._train_features, self.p)
            neighbor_index = np.argpartition(distances, k - 1, axis=1)[:, :k]
            neighbor_labels = self._train_labels[neighbor_index]
            if self.weights == "uniform":
                votes[start : start + len(batch)] = neighbor_labels.mean(axis=1)
            else:
                neighbor_distances = np.take_along_axis(distances, neighbor_index, axis=1)
                inverse = 1.0 / np.maximum(neighbor_distances, 1e-12)
                votes[start : start + len(batch)] = (
                    (neighbor_labels * inverse).sum(axis=1) / inverse.sum(axis=1)
                )
        return votes

    def scores(self, windows: np.ndarray) -> np.ndarray:
        return self._neighbor_votes(self._flatten(windows))

    def predict(self, windows: np.ndarray) -> np.ndarray:
        return (self.scores(windows) >= 0.5).astype(int)


class KNNDistanceDetector(AnomalyDetector, ScaledDetectorMixin):
    """Unsupervised kNN detector: mean distance to the k nearest benign points.

    Fit only on benign windows; the decision threshold is calibrated as a
    quantile of the benign training scores.
    """

    name = "kNN-distance"

    def __init__(self, n_neighbors: int = 7, p: float = 2.0, quantile: float = 0.95, batch_size: int = 512):
        if n_neighbors <= 0:
            raise ValueError("n_neighbors must be positive")
        self.n_neighbors = int(n_neighbors)
        self.p = float(p)
        self.batch_size = int(batch_size)
        self.calibrator = ThresholdCalibrator(quantile=quantile)
        self._train_features: Optional[np.ndarray] = None

    def fit(self, windows: np.ndarray, labels: Optional[np.ndarray] = None) -> "KNNDistanceDetector":
        flat = self._flatten(windows)
        if labels is not None:
            labels = check_array(labels, "labels", ndim=1)
            flat = flat[labels == 0]
            if len(flat) == 0:
                raise ValueError("no benign samples (label 0) to fit on")
        self._train_features = self._fit_scaler(flat)
        self.calibrator.fit(self._training_scores())
        return self

    def _mean_knn_distance(self, scaled: np.ndarray, exclude_self: bool = False) -> np.ndarray:
        k = min(self.n_neighbors, len(self._train_features) - int(exclude_self))
        k = max(k, 1)
        result = np.empty(len(scaled))
        for start in range(0, len(scaled), self.batch_size):
            batch = scaled[start : start + self.batch_size]
            distances = minkowski_distances(batch, self._train_features, self.p)
            if exclude_self:
                # Ignore the zero distance to the point itself during calibration.
                distances = np.sort(distances, axis=1)[:, 1 : k + 1]
            else:
                distances = np.sort(distances, axis=1)[:, :k]
            result[start : start + len(batch)] = distances.mean(axis=1)
        return result

    def _training_scores(self) -> np.ndarray:
        return self._mean_knn_distance(self._train_features, exclude_self=True)

    def scores(self, windows: np.ndarray) -> np.ndarray:
        check_fitted(self, ("_train_features",))
        scaled = self._apply_scaler(self._flatten(windows))
        return self._mean_knn_distance(scaled)

    def predict(self, windows: np.ndarray) -> np.ndarray:
        return self.calibrator.predict(self.scores(windows))
