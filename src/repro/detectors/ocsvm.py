"""One-class support vector machine (ν-OC-SVM) trained with an SMO-style solver.

Implements Schölkopf's one-class SVM dual:

    minimize    0.5 * αᵀ Q α
    subject to  0 ≤ α_i ≤ 1/(ν n),   Σ α_i = 1

with the kernel matrix ``Q_ij = k(x_i, x_j)``.  The decision function is
``f(x) = Σ α_i k(x_i, x) - ρ`` and a sample is flagged anomalous when
``f(x) < 0``.

The paper's configuration (Appendix B) uses the sigmoid kernel with
``coef0=10``, ``gamma='auto'``, and ``ν=0.5``; those are the defaults here.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.detectors.base import AnomalyDetector, ScaledDetectorMixin
from repro.utils.rng import as_random_state
from repro.utils.validation import check_array, check_fitted


def _resolve_gamma(gamma, n_features: int, data: np.ndarray) -> float:
    """Resolve 'auto' / 'scale' / float gamma the same way scikit-learn does."""
    if gamma == "auto":
        return 1.0 / n_features
    if gamma == "scale":
        variance = float(data.var())
        return 1.0 / (n_features * variance) if variance > 0 else 1.0 / n_features
    gamma = float(gamma)
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    return gamma


def kernel_matrix(
    left: np.ndarray,
    right: np.ndarray,
    kernel: str,
    gamma: float,
    coef0: float,
    degree: int,
) -> np.ndarray:
    """Compute the kernel matrix between two sample sets."""
    if kernel == "linear":
        return left @ right.T
    if kernel == "rbf":
        left_norm = np.sum(left**2, axis=1)[:, np.newaxis]
        right_norm = np.sum(right**2, axis=1)[np.newaxis, :]
        squared = np.maximum(left_norm + right_norm - 2.0 * left @ right.T, 0.0)
        return np.exp(-gamma * squared)
    if kernel == "sigmoid":
        return np.tanh(gamma * (left @ right.T) + coef0)
    if kernel == "poly":
        return (gamma * (left @ right.T) + coef0) ** degree
    raise ValueError(f"unknown kernel {kernel!r}; choose linear, rbf, sigmoid, or poly")


class OneClassSVMDetector(AnomalyDetector, ScaledDetectorMixin):
    """ν-one-class SVM anomaly detector.

    Parameters
    ----------
    kernel, gamma, coef0, degree, nu, tol, max_iter:
        Standard OC-SVM hyper-parameters (defaults follow the paper's
        Appendix B).
    max_samples:
        Training windows are subsampled to at most this many points so the
        kernel matrix stays tractable on a laptop; the paper's "All Patients"
        configuration would otherwise build a ~10⁴×10⁴ matrix.
    seed:
        Seed for the subsampling and the SMO working-pair selection.
    """

    name = "OneClassSVM"

    def __init__(
        self,
        kernel: str = "sigmoid",
        gamma="auto",
        coef0: float = 10.0,
        degree: int = 3,
        nu: float = 0.5,
        tol: float = 1e-3,
        max_iter: int = 20000,
        max_samples: int = 1500,
        seed=0,
    ):
        if not 0.0 < nu <= 1.0:
            raise ValueError(f"nu must be in (0, 1], got {nu}")
        if max_samples <= 1:
            raise ValueError("max_samples must exceed 1")
        self.kernel = kernel
        self.gamma = gamma
        self.coef0 = float(coef0)
        self.degree = int(degree)
        self.nu = float(nu)
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        self.max_samples = int(max_samples)
        self._rng = as_random_state(seed)

        self.support_vectors_: Optional[np.ndarray] = None
        self.dual_coef_: Optional[np.ndarray] = None
        self.rho_: Optional[float] = None
        self.gamma_: Optional[float] = None

    # ------------------------------------------------------------------ fitting
    def fit(self, windows: np.ndarray, labels: Optional[np.ndarray] = None) -> "OneClassSVMDetector":
        flat = self._flatten(windows)
        if labels is not None:
            labels = check_array(labels, "labels", ndim=1)
            flat = flat[labels == 0]
            if len(flat) == 0:
                raise ValueError("no benign samples (label 0) to fit on")
        scaled = self._fit_scaler(flat)
        if len(scaled) > self.max_samples:
            index = self._rng.choice(len(scaled), size=self.max_samples, replace=False)
            scaled = scaled[index]

        n_samples, n_features = scaled.shape
        self.gamma_ = _resolve_gamma(self.gamma, n_features, scaled)
        gram = kernel_matrix(scaled, scaled, self.kernel, self.gamma_, self.coef0, self.degree)

        alpha, rho = self._solve_dual(gram)
        support_mask = alpha > 1e-8
        self.support_vectors_ = scaled[support_mask]
        self.dual_coef_ = alpha[support_mask]
        self.rho_ = rho
        self._train_scaled = scaled
        return self

    def _solve_dual(self, gram: np.ndarray):
        """SMO-style pairwise coordinate descent on the OC-SVM dual."""
        n_samples = gram.shape[0]
        upper = 1.0 / (self.nu * n_samples)
        alpha = np.full(n_samples, 1.0 / n_samples)
        gradient = gram @ alpha  # gradient of 0.5 a'Qa is Qa

        rng = self._rng
        for iteration in range(self.max_iter):
            # Working-pair selection: most violating pair among a random subset
            # (full max-violating selection every iteration is O(n^2) overall).
            candidate_count = min(n_samples, 256)
            candidates = rng.choice(n_samples, size=candidate_count, replace=False)
            can_increase = candidates[alpha[candidates] < upper - 1e-12]
            can_decrease = candidates[alpha[candidates] > 1e-12]
            if len(can_increase) == 0 or len(can_decrease) == 0:
                break
            i = can_increase[int(np.argmin(gradient[can_increase]))]
            j = can_decrease[int(np.argmax(gradient[can_decrease]))]
            if i == j:
                continue
            violation = gradient[j] - gradient[i]
            if violation < self.tol and iteration > 50:
                break

            eta = gram[i, i] + gram[j, j] - 2.0 * gram[i, j]
            max_delta = min(upper - alpha[i], alpha[j])
            if max_delta <= 0:
                continue
            if eta > 1e-12:
                delta = min(max_delta, violation / eta)
            else:
                # Non-PSD kernels (e.g. sigmoid) can yield eta <= 0; move to the
                # box edge when that direction decreases the objective.
                delta = max_delta if violation > 0 else 0.0
            if delta <= 0:
                continue
            alpha[i] += delta
            alpha[j] -= delta
            gradient += delta * (gram[:, i] - gram[:, j])

        free_mask = (alpha > 1e-8) & (alpha < upper - 1e-8)
        if np.any(free_mask):
            rho = float(np.mean(gradient[free_mask]))
        else:
            rho = float(np.median(gradient[alpha > 1e-8])) if np.any(alpha > 1e-8) else 0.0
        return alpha, rho

    # ---------------------------------------------------------------- inference
    def decision_function(self, windows: np.ndarray) -> np.ndarray:
        """Signed distance to the learned boundary (negative = anomalous)."""
        check_fitted(self, ("support_vectors_", "dual_coef_", "rho_"))
        scaled = self._apply_scaler(self._flatten(windows))
        kernel = kernel_matrix(
            scaled, self.support_vectors_, self.kernel, self.gamma_, self.coef0, self.degree
        )
        return kernel @ self.dual_coef_ - self.rho_

    def scores(self, windows: np.ndarray) -> np.ndarray:
        return -self.decision_function(windows)

    def predict(self, windows: np.ndarray) -> np.ndarray:
        return (self.decision_function(windows) < 0.0).astype(int)
