"""MAD-GAN: multivariate anomaly detection with a recurrent GAN.

Follows Li et al. (2019): an LSTM generator maps latent sequences to synthetic
multivariate windows, an LSTM discriminator separates real from generated
windows, and anomalies are scored with the *discrimination and reconstruction*
(DR) score — a convex combination of

* the reconstruction error after inverting the generator (finding the latent
  sequence whose generated window best matches the test window), and
* the discriminator's "fake" probability for the test window.

Hyper-parameters follow the paper's Appendix B (4 signals, sequence length 12,
sequence step 1); the epoch count defaults lower than the paper's 100 so the
full pipeline runs on CPU, and is configurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.detectors.base import AnomalyDetector, ThresholdCalibrator
from repro.nn import functional as F
from repro.nn import (
    Adam,
    BatchIterator,
    Dense,
    LSTM,
    Module,
    Parameter,
    Tensor,
    binary_cross_entropy_with_logits,
    fused_bce_with_logits_loss,
)
from repro.utils.timeseries import StandardScaler
from repro.utils.validation import check_array, check_fitted


class SequenceGenerator(Module):
    """LSTM generator: latent sequence ``(B, T, latent)`` → window ``(B, T, F)``."""

    def __init__(self, latent_dim: int, hidden_size: int, n_features: int, seed=None):
        super().__init__()
        self.latent_dim = latent_dim
        self.hidden_size = hidden_size
        self.n_features = n_features
        self.lstm = LSTM(latent_dim, hidden_size, return_sequences=True, seed=seed)
        self.head = Dense(hidden_size, n_features, seed=seed)

    def forward(self, latent) -> Tensor:
        hidden = self.lstm(latent)
        batch, timesteps, _ = hidden.shape
        flat = hidden.reshape(batch * timesteps, self.hidden_size)
        output = self.head(flat)
        return output.reshape(batch, timesteps, self.n_features)

    def fast_forward(self, latent: np.ndarray) -> np.ndarray:
        hidden = self.lstm.fast_forward(np.asarray(latent, dtype=np.float64))
        batch, timesteps, _ = hidden.shape
        flat = hidden.reshape(batch * timesteps, self.hidden_size)
        return self.head.fast_forward(flat).reshape(batch, timesteps, self.n_features)

    # ----------------------------------------------------------------- training
    def fused_forward_train(self, latent: np.ndarray):
        """Graph-free training forward (see :meth:`Module.fused_forward_train`)."""
        hidden, lstm_cache = self.lstm.fused_forward_train(latent)
        batch, timesteps, _ = hidden.shape
        flat_output, head_cache = self.head.fused_forward_train(
            hidden.reshape(batch * timesteps, self.hidden_size)
        )
        output = flat_output.reshape(batch, timesteps, self.n_features)
        return output, (lstm_cache, head_cache, (batch, timesteps))

    def fused_backward_train(self, grad_output: np.ndarray, cache) -> np.ndarray:
        lstm_cache, head_cache, (batch, timesteps) = cache
        grad_output = np.asarray(grad_output, dtype=np.float64)
        d_hidden = self.head.fused_backward_train(
            grad_output.reshape(batch * timesteps, self.n_features), head_cache
        )
        return self.lstm.fused_backward_train(
            d_hidden.reshape(batch, timesteps, self.hidden_size), lstm_cache
        )

    def inversion_grad(
        self, latent: np.ndarray, target: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Graph-free forward plus latent-only backward for generator inversion.

        Returns ``(generated, latent_gradient)`` where ``latent_gradient`` is
        the gradient of ``mean((generated - target) ** 2)`` with respect to
        ``latent``.  This is a hand-written BPTT through the frozen LSTM and
        head that mirrors the autodiff graph operation-for-operation (same
        clipped sigmoid, same gate math, same loss-gradient seeding), so the
        inversion loop produces the same latent trajectory as optimizing
        through the graph — without allocating a single ``Tensor`` node or
        computing any parameter gradient.
        """
        cell = self.lstm.cell
        weight_input = cell.weight_input.data
        weight_hidden = cell.weight_hidden.data
        bias = cell.bias.data
        head_weight = self.head.weight.data
        head_bias = self.head.bias.data

        latent = np.asarray(latent, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        batch, timesteps, _ = latent.shape
        size = self.hidden_size

        # ---- forward (fused input projection, saved gate activations) ----
        projections = (
            latent.reshape(batch * timesteps, self.latent_dim) @ weight_input
        ).reshape(batch, timesteps, 4 * size)
        hidden = np.zeros((batch, size))
        cell_state = np.zeros((batch, size))
        hidden_seq = np.empty((batch, timesteps, size))
        prev_cells = np.empty((batch, timesteps, size))
        gate_i = np.empty((batch, timesteps, size))
        gate_f = np.empty((batch, timesteps, size))
        gate_g = np.empty((batch, timesteps, size))
        gate_o = np.empty((batch, timesteps, size))
        tanh_cells = np.empty((batch, timesteps, size))
        for step in range(timesteps):
            gates = (projections[:, step, :] + hidden @ weight_hidden) + bias
            i = F.sigmoid(gates[:, 0:size])
            f = F.sigmoid(gates[:, size : 2 * size])
            g = np.tanh(gates[:, 2 * size : 3 * size])
            o = F.sigmoid(gates[:, 3 * size : 4 * size])
            prev_cells[:, step, :] = cell_state
            cell_state = f * cell_state + i * g
            tanh_c = np.tanh(cell_state)
            hidden = o * tanh_c
            gate_i[:, step, :] = i
            gate_f[:, step, :] = f
            gate_g[:, step, :] = g
            gate_o[:, step, :] = o
            tanh_cells[:, step, :] = tanh_c
            hidden_seq[:, step, :] = hidden

        flat = hidden_seq.reshape(batch * timesteps, size)
        generated = (flat @ head_weight + head_bias).reshape(
            batch, timesteps, self.n_features
        )

        # ---- backward, latent path only ----
        residual = generated - target
        # Seeded exactly as the autodiff `(r * r).mean()` backward: r/count
        # accumulated twice (doubling is exact in floating point).
        d_generated = residual * (1.0 / residual.size)
        d_generated = d_generated + d_generated
        d_hidden_seq = (
            d_generated.reshape(batch * timesteps, self.n_features) @ head_weight.T
        ).reshape(batch, timesteps, size)

        d_hidden = np.zeros((batch, size))
        d_cell = np.zeros((batch, size))
        d_projections = np.empty_like(projections)
        for step in range(timesteps - 1, -1, -1):
            i = gate_i[:, step, :]
            f = gate_f[:, step, :]
            g = gate_g[:, step, :]
            o = gate_o[:, step, :]
            tanh_c = tanh_cells[:, step, :]
            dh = d_hidden_seq[:, step, :] + d_hidden
            d_output = dh * tanh_c
            dc = d_cell + dh * o * (1.0 - tanh_c**2)
            d_input = dc * g
            d_forget = dc * prev_cells[:, step, :]
            d_candidate = dc * i
            d_cell = dc * f
            d_gates = np.concatenate(
                [
                    d_input * i * (1.0 - i),
                    d_forget * f * (1.0 - f),
                    d_candidate * (1.0 - g**2),
                    d_output * o * (1.0 - o),
                ],
                axis=1,
            )
            d_hidden = d_gates @ weight_hidden.T
            d_projections[:, step, :] = d_gates

        d_latent = (
            d_projections.reshape(batch * timesteps, 4 * size) @ weight_input.T
        ).reshape(latent.shape)
        return generated, d_latent


class SequenceDiscriminator(Module):
    """LSTM discriminator: window ``(B, T, F)`` → real/fake logit ``(B, 1)``."""

    def __init__(self, n_features: int, hidden_size: int, seed=None):
        super().__init__()
        self.lstm = LSTM(n_features, hidden_size, return_sequences=False, seed=seed)
        self.head = Dense(hidden_size, 1, seed=seed)

    def forward(self, windows) -> Tensor:
        return self.head(self.lstm(windows))

    def fast_forward(self, windows: np.ndarray) -> np.ndarray:
        return self.head.fast_forward(
            self.lstm.fast_forward(np.asarray(windows, dtype=np.float64))
        )

    # ----------------------------------------------------------------- training
    def fused_forward_train(self, windows: np.ndarray):
        """Graph-free training forward (see :meth:`Module.fused_forward_train`)."""
        hidden, lstm_cache = self.lstm.fused_forward_train(windows)
        logits, head_cache = self.head.fused_forward_train(hidden)
        return logits, (lstm_cache, head_cache)

    def fused_backward_train(self, grad_output: np.ndarray, cache) -> np.ndarray:
        lstm_cache, head_cache = cache
        d_hidden = self.head.fused_backward_train(
            np.asarray(grad_output, dtype=np.float64), head_cache
        )
        return self.lstm.fused_backward_train(d_hidden, lstm_cache)


@dataclass
class MADGANTrainingHistory:
    """Per-epoch generator/discriminator losses."""

    generator_losses: List[float] = field(default_factory=list)
    discriminator_losses: List[float] = field(default_factory=list)


@dataclass
class InversionState:
    """Per-stream carry-over for incremental MAD-GAN window scoring.

    One state belongs to one sliding-window stream (one monitored CGM
    session).  It carries the previous tick's best inversion latent so the
    next tick's generator inversion can warm-start instead of re-searching
    the latent space from a random draw.

    Attributes
    ----------
    latent:
        ``(sequence_length, latent_dim)`` best latent found at the previous
        tick, or None before the first scored window (the next call runs a
        cold inversion).
    error:
        The previous tick's reconstruction error (max per-timestep MSE, in
        scaled feature units) — the warm-start fallback compares against it.
    ticks:
        Number of windows scored through this state.
    fallbacks:
        How many ticks fell back to a cold inversion because the warm
        residual regressed (see :meth:`MADGANDetector.scores_incremental`).
    """

    latent: Optional[np.ndarray] = None
    error: Optional[float] = None
    ticks: int = 0
    fallbacks: int = 0
    #: Ticks this stream has been awaiting a deferred cold re-anchor (0 =
    #: not pending).  Only used when the detector runs with
    #: ``fallback_defer > 0``; see :meth:`MADGANDetector.scores_incremental`.
    pending_cold: int = 0
    #: Current run of back-to-back ticks whose warm inversion regressed
    #: (eagerly cold-verified or deferred); reset to 0 by any clean warm
    #: tick or scheduled cold re-anchor.  The streaming adapter's
    #: inversion-divergence watchdog compares this against its threshold
    #: (:class:`repro.detectors.streaming.StreamingDetector`).
    consecutive_fallbacks: int = 0

    def reset(self) -> None:
        """Forget the carried latent; the next call runs a cold inversion."""
        self.latent = None
        self.error = None
        self.ticks = 0
        self.fallbacks = 0
        self.pending_cold = 0
        self.consecutive_fallbacks = 0


@dataclass
class ColdBatchPlan:
    """Intermediate state between the two phases of incremental scoring.

    :meth:`MADGANDetector.begin_scores_incremental` classifies every stream
    (warm / cold / deferred), runs the warm inversions, draws the cold-start
    latents, and stops *just before* the cold inversion — the one batched
    gradient search that dominates tick cost.  The plan carries everything
    :meth:`MADGANDetector.finish_scores_incremental` needs to resume, which
    lets a scheduler coalesce the cold work of *several* detector groups into
    one inversion batch per detector (see
    ``repro.serving.scheduler.Scheduler(coalesce_cold_batches=...)``).

    Plans are single-tick, single-process objects: they hold live references
    to the caller's states and never cross a pickle boundary.
    """

    #: Scaled ``(n, sequence_length, n_features)`` windows for this call.
    scaled: np.ndarray
    #: The caller's per-stream states, updated in place by ``finish``.
    states: Sequence[InversionState]
    #: Per-stream errors; warm entries are final, cold entries placeholders.
    errors: np.ndarray
    #: Stream indices whose cold inversion is still owed (may be empty).
    rerun_cold: List[int]
    #: Subset of ``rerun_cold`` that keeps ``min(warm, cold)`` semantics.
    fallback_set: set
    #: ``(len(rerun_cold), sequence_length, latent_dim)`` cold-start latents,
    #: drawn by ``begin`` so RNG order is identical whether or not the cold
    #: inversion is batched with other plans; None when nothing is owed.
    cold_initial: Optional[np.ndarray] = None


class MADGANDetector(AnomalyDetector):
    """MAD-GAN anomaly detector with the DR anomaly score.

    Parameters
    ----------
    sequence_length, n_features:
        Window geometry (defaults follow the paper: 12 samples, 4 signals).
    latent_dim, hidden_size:
        Generator/discriminator sizes.
    epochs, batch_size, learning_rate:
        Adversarial training hyper-parameters.
    inversion_steps, inversion_learning_rate:
        Gradient steps used to invert the generator when scoring.
    warm_inversion_steps:
        Gradient steps used by :meth:`scores_incremental` when warm-starting
        the inversion from the previous tick's latent (a fraction of
        ``inversion_steps`` — the warm start is already near the optimum).
    warm_fallback_ratio:
        A warm-started inversion whose reconstruction error exceeds
        ``warm_fallback_ratio`` times the previous tick's error re-runs the
        full cold inversion for that stream, so a stale latent can never
        inflate anomaly scores (the *smaller* of the warm and cold errors is
        kept — the inversion is a best-effort minimum).
    fallback_defer:
        How the warm-fallback cold re-runs are scheduled.  ``0`` (the
        default) re-runs the cold inversion for regressed streams in the
        same :meth:`scores_incremental` call that detected the regression —
        under adversarial churn that means many ticks pay a second, tiny
        cold-inversion batch.  ``N > 0`` instead *defers* a regressed
        stream: it keeps the smaller of its warm error and its carried
        previous error (so a stale latent still cannot inflate scores),
        and is cold re-anchored at the first tick that already pays a cold
        batch (cold starts, refreshes, or other flushes — the re-run rides
        along for free) or after at most ``N`` ticks, whichever comes
        first.  Deferred streams coalesce into ONE batched cold inversion
        instead of many tiny ones; ``tests/test_detectors.py`` pins fewer
        inversion calls with identical verdicts on a churn-heavy fixture.
    cold_refresh_interval:
        Every this-many ticks a stream's warm carry-over is discarded and
        the tick scored with a full cold inversion.  This bounds drift in
        the *other* direction: over a long stationary stretch (e.g. a
        sustained spoofed level) the carried latent keeps accumulating
        optimization steps and can reconstruct the windows *better* than
        the cold path the decision threshold was calibrated on, deflating
        scores; the periodic re-anchor caps how long such drift can build
        before a cold-calibrated score is restored.  None disables it.
    reconstruction_weight:
        λ in ``DR = λ · reconstruction + (1 − λ) · discrimination``.
    quantile:
        Benign-score quantile used to calibrate the decision threshold.
    use_fast_path:
        When True (the default) both training and scoring run graph-free.
        :meth:`fit` trains every GAN step through the fused engine
        (hand-written BPTT with full weight gradients, see
        :meth:`_gan_step_fused`); scoring runs the inference fast paths: the
        generator inversion keeps gradients only for the latent (the
        generator's parameters are frozen during the loop, skipping every
        weight-gradient computation), and the final reconstruction and the
        discriminator probabilities are computed graph-free.  Set False to
        route every training step and scoring query through the full
        autodiff graph; the two paths agree within 1e-8 on gradients and
        produce step-for-step matching fixed-seed loss curves (see
        ``tests/test_nn_fused.py``, ``scripts/bench_train.py``).
    seed:
        Seed for weights, latent sampling, and batching.
    """

    name = "MAD-GAN"

    def __init__(
        self,
        sequence_length: int = 12,
        n_features: int = 4,
        latent_dim: int = 4,
        hidden_size: int = 16,
        epochs: int = 15,
        batch_size: int = 64,
        learning_rate: float = 0.005,
        inversion_steps: int = 40,
        inversion_learning_rate: float = 0.1,
        warm_inversion_steps: int = 10,
        warm_fallback_ratio: float = 1.5,
        fallback_defer: int = 0,
        cold_refresh_interval: Optional[int] = 32,
        reconstruction_weight: float = 0.7,
        quantile: float = 0.95,
        max_samples: int = 3000,
        use_fast_path: bool = True,
        seed=0,
    ):
        if not 0.0 <= reconstruction_weight <= 1.0:
            raise ValueError("reconstruction_weight must be in [0, 1]")
        self.use_fast_path = bool(use_fast_path)
        self.sequence_length = int(sequence_length)
        self.n_features = int(n_features)
        self.latent_dim = int(latent_dim)
        self.hidden_size = int(hidden_size)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        if warm_inversion_steps <= 0:
            raise ValueError("warm_inversion_steps must be positive")
        if warm_fallback_ratio < 1.0:
            raise ValueError("warm_fallback_ratio must be >= 1.0")
        if fallback_defer < 0:
            raise ValueError("fallback_defer must be non-negative")
        if cold_refresh_interval is not None and cold_refresh_interval <= 0:
            raise ValueError("cold_refresh_interval must be positive or None")
        self.inversion_steps = int(inversion_steps)
        self.inversion_learning_rate = float(inversion_learning_rate)
        self.warm_inversion_steps = int(warm_inversion_steps)
        self.warm_fallback_ratio = float(warm_fallback_ratio)
        self.fallback_defer = int(fallback_defer)
        self.cold_refresh_interval = (
            None if cold_refresh_interval is None else int(cold_refresh_interval)
        )
        self.reconstruction_weight = float(reconstruction_weight)
        self.max_samples = int(max_samples)

        from repro.utils.rng import as_random_state

        self._rng = as_random_state(seed)
        generator_seed, discriminator_seed = self._rng.spawn(2)
        self.generator = SequenceGenerator(
            self.latent_dim, self.hidden_size, self.n_features, seed=generator_seed
        )
        self.discriminator = SequenceDiscriminator(
            self.n_features, self.hidden_size, seed=discriminator_seed
        )
        self.calibrator = ThresholdCalibrator(quantile=quantile)
        self.history_: Optional[MADGANTrainingHistory] = None
        self._scaler: Optional[StandardScaler] = None
        self._benign_reconstruction_scale: Optional[float] = None
        #: How many `_invert_fast` batches this detector has run (cold or
        #: warm) — the per-call python overhead the fallback coalescing
        #: machinery minimizes; regression tests compare it across modes.
        self.inversion_calls = 0

    # ------------------------------------------------------------------ scaling
    def _scale(self, windows: np.ndarray, fit: bool = False) -> np.ndarray:
        windows = check_array(windows, "windows", ndim=3, min_samples=1)
        if windows.shape[1] != self.sequence_length or windows.shape[2] != self.n_features:
            raise ValueError(
                f"windows must have shape (n, {self.sequence_length}, {self.n_features}), "
                f"got {windows.shape}"
            )
        flat = windows.reshape(-1, self.n_features)
        if fit:
            self._scaler = StandardScaler().fit(flat)
        if self._scaler is None:
            raise RuntimeError("MADGANDetector is not fitted")
        return self._scaler.transform(flat).reshape(windows.shape)

    def _sample_latent(self, batch_size: int) -> np.ndarray:
        return self._rng.normal(
            0.0, 1.0, size=(batch_size, self.sequence_length, self.latent_dim)
        )

    # ----------------------------------------------------------------- training
    def fit(self, windows: np.ndarray, labels: Optional[np.ndarray] = None) -> "MADGANDetector":
        if labels is not None:
            labels = check_array(labels, "labels", ndim=1)
            windows = np.asarray(windows)[labels == 0]
            if len(windows) == 0:
                raise ValueError("no benign samples (label 0) to fit on")
        scaled = self._scale(np.asarray(windows, dtype=np.float64), fit=True)
        if len(scaled) > self.max_samples:
            index = self._rng.choice(len(scaled), size=self.max_samples, replace=False)
            scaled = scaled[index]

        generator_optimizer = Adam(self.generator.parameters(), learning_rate=self.learning_rate)
        discriminator_optimizer = Adam(
            self.discriminator.parameters(), learning_rate=self.learning_rate
        )
        iterator = BatchIterator(
            scaled, batch_size=self.batch_size, shuffle=True, drop_last=True, seed=self._rng.derive("batches")
        )
        gan_step = self._gan_step_fused if self.use_fast_path else self._gan_step_graph
        history = MADGANTrainingHistory()
        for _ in range(self.epochs):
            generator_losses = []
            discriminator_losses = []
            for real_batch, _ in iterator:
                latent = self._sample_latent(len(real_batch))
                generator_loss, discriminator_loss = gan_step(
                    real_batch, latent, generator_optimizer, discriminator_optimizer
                )
                generator_losses.append(generator_loss)
                discriminator_losses.append(discriminator_loss)
            history.generator_losses.append(float(np.mean(generator_losses)))
            history.discriminator_losses.append(float(np.mean(discriminator_losses)))
        self.history_ = history

        benign_reconstruction = self._reconstruction_errors(scaled)
        self._benign_reconstruction_scale = float(np.mean(benign_reconstruction) + 1e-12)
        benign_scores = self._dr_scores(scaled, benign_reconstruction)
        self.calibrator.fit(benign_scores)
        return self

    def _gan_step_graph(
        self, real_batch, latent, generator_optimizer, discriminator_optimizer
    ) -> Tuple[float, float]:
        """One adversarial step through the autodiff graph (reference twin)."""
        batch_size = len(real_batch)

        # -- discriminator step
        discriminator_optimizer.zero_grad()
        fake_batch = self.generator(Tensor(latent)).detach()
        real_logits = self.discriminator(Tensor(real_batch))
        fake_logits = self.discriminator(fake_batch)
        real_loss = binary_cross_entropy_with_logits(
            real_logits, Tensor(np.ones((batch_size, 1)))
        )
        fake_loss = binary_cross_entropy_with_logits(
            fake_logits, Tensor(np.zeros((batch_size, 1)))
        )
        discriminator_loss = real_loss + fake_loss
        discriminator_loss.backward()
        discriminator_optimizer.clip_gradients(5.0)
        discriminator_optimizer.step()

        # -- generator step: the discriminator is frozen, so backward skips
        # its weight-gradient computations entirely (the same gradients the
        # old per-step discriminator.zero_grad() threw away); the generator
        # gradient is unchanged.
        generator_optimizer.zero_grad()
        self.discriminator.requires_grad_(False)
        try:
            generated = self.generator(Tensor(latent))
            generated_logits = self.discriminator(generated)
            generator_loss = binary_cross_entropy_with_logits(
                generated_logits, Tensor(np.ones((batch_size, 1)))
            )
            generator_loss.backward()
        finally:
            self.discriminator.requires_grad_(True)
        generator_optimizer.clip_gradients(5.0)
        generator_optimizer.step()
        return generator_loss.item(), discriminator_loss.item()

    def _gan_step_fused(
        self, real_batch, latent, generator_optimizer, discriminator_optimizer
    ) -> Tuple[float, float]:
        """One adversarial step on the fused training engine (no autodiff graph).

        Mirrors :meth:`_gan_step_graph` update-for-update — fused gradients
        are pinned to the graph within 1e-8, so fixed-seed loss curves match
        step-for-step — with one extra fusion the graph path cannot express:
        the generator forward runs ONCE per batch.  Its output serves the
        discriminator step as the (constant) fake batch, and its cached
        activations serve the generator step's backward — valid because the
        discriminator update in between never touches generator weights.
        (The graph path must re-run the generator to rebuild a fresh graph.)
        The generator step re-runs only the discriminator forward, on the
        *updated* discriminator, exactly like the graph path; the frozen
        discriminator contributes its input gradient while every
        weight-gradient matmul is skipped (``requires_grad_`` is honored by
        the fused backward).
        """
        batch_size = len(real_batch)
        ones = np.ones((batch_size, 1))
        generated, generator_cache = self.generator.fused_forward_train(latent)

        # -- discriminator step (two loss branches accumulate into .grad)
        discriminator_optimizer.zero_grad()
        real_logits, real_cache = self.discriminator.fused_forward_train(real_batch)
        fake_logits, fake_cache = self.discriminator.fused_forward_train(generated)
        real_loss, d_real_logits = fused_bce_with_logits_loss(real_logits, ones)
        fake_loss, d_fake_logits = fused_bce_with_logits_loss(
            fake_logits, np.zeros((batch_size, 1))
        )
        self.discriminator.fused_backward_train(d_real_logits, real_cache)
        self.discriminator.fused_backward_train(d_fake_logits, fake_cache)
        discriminator_loss = real_loss + fake_loss
        discriminator_optimizer.clip_gradients(5.0)
        discriminator_optimizer.step()

        # -- generator step through the frozen, freshly updated discriminator
        generator_optimizer.zero_grad()
        self.discriminator.requires_grad_(False)
        try:
            generated_logits, frozen_cache = self.discriminator.fused_forward_train(
                generated
            )
            generator_loss, d_generated_logits = fused_bce_with_logits_loss(
                generated_logits, ones
            )
            d_generated = self.discriminator.fused_backward_train(
                d_generated_logits, frozen_cache
            )
            self.generator.fused_backward_train(d_generated, generator_cache)
        finally:
            self.discriminator.requires_grad_(True)
        generator_optimizer.clip_gradients(5.0)
        generator_optimizer.step()
        return generator_loss, discriminator_loss

    # ------------------------------------------------------------------ scoring
    def _invert_fast(
        self, scaled_windows: np.ndarray, initial_latent: np.ndarray, steps: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run ``steps`` fast-path inversion iterations from ``initial_latent``.

        Returns ``(errors, latent)``: the per-window reconstruction error
        (max per-timestep MSE over the window, scaled feature units) and the
        optimized latent ``(n, sequence_length, latent_dim)`` — the carry-over
        :meth:`scores_incremental` stores per stream.
        """
        self.inversion_calls += 1
        latent = Parameter(
            np.array(initial_latent, dtype=np.float64, copy=True), name="latent"
        )
        optimizer = Adam([latent], learning_rate=self.inversion_learning_rate)
        for _ in range(steps):
            _, latent.grad = self.generator.inversion_grad(latent.data, scaled_windows)
            optimizer.step()
            latent.data = np.clip(latent.data, -2.5, 2.5)
        generated = self.generator.fast_forward(latent.data)
        per_timestep = np.mean((generated - scaled_windows) ** 2, axis=2)
        return per_timestep.max(axis=1), latent.data

    def _reconstruction_errors(
        self,
        scaled_windows: np.ndarray,
        fast_path: Optional[bool] = None,
        initial_latent: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Best-effort generator inversion: optimize latent sequences by gradient.

        With ``fast_path`` (defaulting to :attr:`use_fast_path`), every
        optimization step runs :meth:`SequenceGenerator.inversion_grad` — a
        graph-free forward plus a hand-written BPTT that computes gradients
        *only for the latent*.  No autodiff nodes are allocated and no
        parameter gradients are computed; the latent trajectory mirrors the
        graph path operation-for-operation, so the two paths agree within
        1e-8 (``tests/test_detectors.py`` pins this).

        ``initial_latent`` overrides the random latent initialization; when
        omitted, one latent sample is drawn from the detector's persistent RNG
        (so back-to-back calls start from different latents).
        """
        fast = self.use_fast_path if fast_path is None else bool(fast_path)
        count = len(scaled_windows)
        if initial_latent is None:
            initial_latent = self._sample_latent(count) * 0.1
        # Constraining the latent to the typical set of its prior is part of
        # both loops: an unbounded latent lets the generator chase arbitrary
        # (including adversarial) targets, which would destroy the
        # reconstruction signal of the DR score.
        if fast:
            errors, _ = self._invert_fast(
                scaled_windows, initial_latent, self.inversion_steps
            )
            return errors
        latent = Parameter(np.array(initial_latent, dtype=np.float64, copy=True), name="latent")
        optimizer = Adam([latent], learning_rate=self.inversion_learning_rate)
        target = Tensor(scaled_windows)
        for _ in range(self.inversion_steps):
            optimizer.zero_grad()
            self.generator.zero_grad()
            generated = self.generator(latent)
            residual = generated - target
            loss = (residual * residual).mean()
            loss.backward()
            optimizer.step()
            latent.data = np.clip(latent.data, -2.5, 2.5)
        generated = self.generator(latent).numpy()
        per_timestep = np.mean((generated - scaled_windows) ** 2, axis=2)
        # A manipulation typically touches only the trailing samples of a
        # window; the max over timesteps keeps a localized discrepancy from
        # being diluted by the (well-reconstructed) rest of the window.
        return per_timestep.max(axis=1)

    def _discrimination_scores(self, scaled_windows: np.ndarray) -> np.ndarray:
        """Probability that each window is fake according to the discriminator."""
        if self.use_fast_path:
            logits = self.discriminator.predict(scaled_windows).reshape(-1)
        else:
            logits = self.discriminator(Tensor(scaled_windows)).numpy().reshape(-1)
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))

    def _dr_scores(self, scaled_windows: np.ndarray, reconstruction: Optional[np.ndarray] = None) -> np.ndarray:
        if reconstruction is None:
            reconstruction = self._reconstruction_errors(scaled_windows)
        scale = self._benign_reconstruction_scale or float(np.mean(reconstruction) + 1e-12)
        normalized_reconstruction = reconstruction / scale
        fake_probability = 1.0 - self._discrimination_scores(scaled_windows)
        return (
            self.reconstruction_weight * normalized_reconstruction
            + (1.0 - self.reconstruction_weight) * fake_probability
        )

    def scores(self, windows: np.ndarray) -> np.ndarray:
        """DR anomaly scores for a batch of raw windows (cold inversion).

        Parameters
        ----------
        windows:
            ``(n, sequence_length, n_features)`` raw (unscaled) multivariate
            windows — **window** units, the same view the detector was fitted
            on.  NaNs are not accepted; a streaming caller must wait out the
            warm-up (see :meth:`repro.detectors.streaming.StreamingDetector`).

        Returns
        -------
        ``(n,)`` float scores, larger = more anomalous.  Each call inverts
        the generator from a *fresh* random latent (drawn from the detector's
        persistent RNG), so back-to-back calls on the same windows return
        slightly different scores; :meth:`scores_incremental` is the
        deterministic-carry-over variant for per-tick streams.
        """
        check_fitted(self, ("_scaler", "history_"))
        scaled = self._scale(np.asarray(windows, dtype=np.float64))
        return self._dr_scores(scaled)

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Binary decisions for raw windows: 1 = anomalous (see :meth:`scores`)."""
        return self.calibrator.predict(self.scores(windows))

    # ----------------------------------------------------------- incremental API
    def make_inversion_state(self) -> InversionState:
        """Fresh per-stream carry-over for :meth:`scores_incremental`."""
        return InversionState()

    def scores_incremental(
        self, windows: np.ndarray, states: Sequence[InversionState]
    ) -> np.ndarray:
        """DR anomaly scores with per-stream warm-started generator inversion.

        The per-tick cost ceiling of streaming MAD-GAN monitoring is the
        generator inversion: :meth:`scores` spends ``inversion_steps``
        gradient steps per call searching the latent space from a random
        draw.  Consecutive windows of one stream overlap in all but one
        sample, so their best latents are close; this method warm-starts the
        inversion from the previous tick's optimum and needs only
        ``warm_inversion_steps`` steps to reconverge.

        Parameters
        ----------
        windows:
            ``(n, sequence_length, n_features)`` raw windows — one per
            monitored stream, each the stream's *current* sliding window
            (shifted by exactly one sample since that stream's previous
            call; the carried latent is shifted one timestep to match).
        states:
            One :class:`InversionState` per window, aligned by position.
            States are updated in place: a stream's first call (``latent``
            None) runs the full cold inversion and seeds the state.

        Returns
        -------
        ``(n,)`` float DR scores in the same units as :meth:`scores`.

        Fallback guarantee: a warm inversion whose reconstruction error
        exceeds ``warm_fallback_ratio`` × the previous tick's error re-runs
        the cold inversion for that stream and keeps the better (smaller) of
        the two errors, so a stale latent can only ever *lower* scores back
        toward the cold path, never inflate them.  With ``fallback_defer``
        set, that cold re-run may be *deferred*: the regressed stream keeps
        ``min(warm error, carried error)`` (still never inflating) and is
        re-anchored by the next tick's already-paid cold batch or after at
        most ``fallback_defer`` ticks — deferred streams coalesce into one
        batched cold inversion instead of each regression tick paying its
        own tiny batch (track :attr:`inversion_calls` to compare).  Drift in the other
        direction is bounded by ``cold_refresh_interval``: every N ticks the
        carry-over is discarded and the tick scored cold, re-anchoring the
        stream to the statistics the threshold was calibrated on.  Warm and
        cold scores agree within the cold path's own restart-to-restart
        variability — ``tests/test_detectors.py`` pins score agreement and
        ``scripts/bench_serving.py`` asserts verdict parity on its fixture.

        Raises ``ValueError`` when the detector was built with
        ``use_fast_path=False``: the warm inversion has no autodiff twin, so
        the reference configuration must score through :meth:`scores`.

        Implemented as :meth:`finish_scores_incremental` applied to
        :meth:`begin_scores_incremental` — callers that want to batch the
        cold inversion across several calls (the scheduler's cross-group
        coalescing) invoke the phases separately; this one-shot composition
        is bitwise identical to the pre-phased implementation.
        """
        return self.finish_scores_incremental(
            self.begin_scores_incremental(windows, states)
        )

    def begin_scores_incremental(
        self, windows: np.ndarray, states: Sequence[InversionState]
    ) -> ColdBatchPlan:
        """Phase 1 of :meth:`scores_incremental`: everything but the cold batch.

        Classifies streams, runs the warm inversions and fallback logic, and
        draws the cold-start latents, returning a :class:`ColdBatchPlan`
        whose ``rerun_cold`` names the streams still owing a cold inversion.
        Pass the plan to :meth:`finish_scores_incremental` — directly for
        the one-shot path, or after running :meth:`invert_cold` yourself
        (possibly on several plans' windows concatenated) to coalesce.
        """
        if not self.use_fast_path:
            raise ValueError(
                "incremental scoring is a fast-path-only feature (the warm "
                "inversion has no autodiff twin); use scores() with "
                "use_fast_path=False for the reference path"
            )
        check_fitted(self, ("_scaler", "history_"))
        windows = np.asarray(windows, dtype=np.float64)
        if len(windows) != len(states):
            raise ValueError("windows and states must have the same length")
        scaled = self._scale(windows)
        count = len(scaled)
        errors = np.empty(count)
        latent_shape = (self.sequence_length, self.latent_dim)

        refresh = self.cold_refresh_interval
        defer = self.fallback_defer
        warm_indices: List[int] = []
        cold_indices: List[int] = []
        for index, state in enumerate(states):
            if state.latent is None:
                cold_indices.append(index)
            elif state.latent.shape != latent_shape:
                raise ValueError(
                    f"state latent must have shape {latent_shape}, "
                    f"got {state.latent.shape}"
                )
            elif refresh is not None and state.ticks > 0 and state.ticks % refresh == 0:
                # Periodic cold re-anchor (see cold_refresh_interval): the
                # carried latent is discarded for this tick.
                cold_indices.append(index)
            elif defer and state.pending_cold >= defer:
                # A deferred fallback has waited its maximum; force the
                # cold re-anchor this tick.
                cold_indices.append(index)
            else:
                warm_indices.append(index)
        if cold_indices and defer:
            # A cold batch already runs this tick — flush every pending
            # stream into it so its re-anchor rides along for free.
            flushed = [
                index for index in warm_indices if states[index].pending_cold > 0
            ]
            if flushed:
                cold_indices.extend(flushed)
                warm_indices = [
                    index for index in warm_indices if states[index].pending_cold == 0
                ]

        fallback_indices: List[int] = []
        deferral_candidates: List[int] = []
        still_pending: List[int] = []
        late_flush: List[int] = []
        if warm_indices:
            # The window slid one sample: shift the latent one timestep to
            # keep each latent step aligned with the sample it explains; the
            # vacated final step reuses the previous final latent (its best
            # local guess for the just-arrived sample).
            initial = np.stack(
                [
                    np.concatenate(
                        [states[index].latent[1:], states[index].latent[-1:]]
                    )
                    for index in warm_indices
                ]
            )
            warm_errors, warm_latents = self._invert_fast(
                scaled[warm_indices], initial, self.warm_inversion_steps
            )
            scale = self._benign_reconstruction_scale or 1.0
            for position, index in enumerate(warm_indices):
                state = states[index]
                # A state restored with a latent but no carried error (e.g.
                # deserialized) gets the floor, so the fallback comparison
                # still runs — conservatively cold-verifying the warm result.
                carried = 0.0 if state.error is None else float(state.error)
                previous = max(carried, 0.01 * scale)
                warm_error = float(warm_errors[position])
                errors[index] = warm_error
                state.latent = warm_latents[position]
                if state.pending_cold:
                    # Awaiting a deferred re-anchor: the divergence run is
                    # still open (the watchdog counts these ticks too).
                    state.consecutive_fallbacks += 1
                    if warm_error > scale:
                        # The error grew anomaly-relevant while deferred:
                        # escalate to an immediate cold verification (the
                        # rerun below keeps the smaller error, as eager).
                        fallback_indices.append(index)
                    else:
                        # Still benign-scale: keep tracking the sliding
                        # window but never report above the carried anchor
                        # (the no-inflation guarantee while deferred).
                        errors[index] = min(warm_error, carried)
                        still_pending.append(index)
                    continue
                if warm_error > self.warm_fallback_ratio * previous:
                    state.fallbacks += 1
                    state.consecutive_fallbacks += 1
                    deferrable = (
                        defer
                        and state.error is not None
                        # Only verdict-neutral regressions may wait: an error
                        # within the benign reconstruction scale scores deep
                        # below any calibrated threshold, so capping it at
                        # the carried anchor cannot flip a decision.  An
                        # anomaly-relevant error (a genuine level shift, not
                        # stale-latent noise) always cold-verifies NOW.
                        and warm_error <= scale
                    )
                    if deferrable:
                        deferral_candidates.append(index)
                    else:
                        # Eager mode, no trustworthy anchor, or an
                        # anomaly-relevant regression: re-run cold in this
                        # tick's batch.
                        fallback_indices.append(index)
                else:
                    # Clean warm tick: the divergence run (if any) is over.
                    state.consecutive_fallbacks = 0

        # Deferral is decided only after EVERY warm stream has been seen: if
        # any stream opened a cold batch this tick (cold starts, refreshes,
        # escalations, non-deferrable fallbacks), candidates ride along in it
        # — keeping the eager min(warm, cold) semantics — and already-pending
        # streams flush into it as plain cold re-anchors.  Only when no cold
        # batch runs at all does a candidate actually wait.
        if deferral_candidates or still_pending:
            if cold_indices or fallback_indices:
                fallback_indices.extend(deferral_candidates)
                late_flush = still_pending
            else:
                for index in deferral_candidates:
                    state = states[index]
                    # Cap the reported error at the carried anchor and queue
                    # the re-anchor (it runs at the next paid cold batch, or
                    # after `defer` ticks).
                    errors[index] = min(errors[index], float(state.error))
                    state.pending_cold = 1
                for index in still_pending:
                    states[index].pending_cold += 1

        rerun_cold = cold_indices + late_flush + fallback_indices
        cold_initial = None
        if rerun_cold:
            # Drawn here (not in finish) so the detector's RNG stream advances
            # identically whether the cold batch runs standalone or merged
            # with other plans by a coalescing scheduler.
            cold_initial = self._sample_latent(len(rerun_cold)) * 0.1
        return ColdBatchPlan(
            scaled=scaled,
            states=states,
            errors=errors,
            rerun_cold=rerun_cold,
            fallback_set=set(fallback_indices),
            cold_initial=cold_initial,
        )

    def invert_cold(
        self, scaled_windows: np.ndarray, initial: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run the full-strength cold inversion on already-scaled windows.

        The public hook a coalescing scheduler uses to run ONE batched
        inversion over several plans' ``scaled[rerun_cold]`` windows (with
        their ``cold_initial`` latents concatenated in the same order), then
        split the results back per plan for :meth:`finish_scores_incremental`.
        Counts one :attr:`inversion_calls` batch regardless of size.
        """
        return self._invert_fast(scaled_windows, initial, self.inversion_steps)

    def finish_scores_incremental(
        self,
        plan: ColdBatchPlan,
        cold_errors: Optional[np.ndarray] = None,
        cold_latents: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Phase 2 of :meth:`scores_incremental`: settle the cold batch.

        With ``cold_errors``/``cold_latents`` omitted, runs the plan's own
        cold inversion (the one-shot path).  A coalescing caller instead
        passes this plan's slice of a merged :meth:`invert_cold` result; the
        fallback ``min(warm, cold)`` semantics, state updates, and DR scoring
        are identical either way.
        """
        scaled = plan.scaled
        states = plan.states
        errors = plan.errors
        rerun_cold = plan.rerun_cold
        if rerun_cold:
            fallback_set = plan.fallback_set
            if cold_errors is None:
                cold_errors, cold_latents = self.invert_cold(
                    scaled[rerun_cold], plan.cold_initial
                )
            elif cold_latents is None:
                raise ValueError("cold_latents must accompany cold_errors")
            if len(cold_errors) != len(rerun_cold):
                raise ValueError(
                    f"expected {len(rerun_cold)} cold results, got {len(cold_errors)}"
                )
            for position, index in enumerate(rerun_cold):
                state = states[index]
                cold_error = float(cold_errors[position])
                state.pending_cold = 0
                if index not in fallback_set:
                    # A scheduled cold tick (cold start, periodic refresh,
                    # deferred-flush re-anchor) closes any divergence run.
                    state.consecutive_fallbacks = 0
                if index in fallback_set:
                    if cold_error > errors[index]:
                        continue  # the warm result was the better inversion
                errors[index] = cold_error
                state.latent = cold_latents[position]

        for index, state in enumerate(states):
            state.error = float(errors[index])
            state.ticks += 1
        return self._dr_scores(scaled, errors)

    def predict_incremental(
        self,
        windows: np.ndarray,
        states: Sequence[InversionState],
        include_scores: bool = False,
    ):
        """Binary decisions via :meth:`scores_incremental` (one inversion total).

        Returns the ``(n,)`` int flag array, or ``(flags, scores)`` when
        ``include_scores`` is True — the scores are the very ones the flags
        were thresholded from, so callers never pay a second inversion.
        """
        scores = self.scores_incremental(windows, states)
        flags = self.calibrator.predict(scores)
        if include_scores:
            return flags, scores
        return flags

    def finish_predict_incremental(
        self,
        plan: ColdBatchPlan,
        cold_errors: Optional[np.ndarray] = None,
        cold_latents: Optional[np.ndarray] = None,
        include_scores: bool = False,
    ):
        """Verdict-level phase 2: :meth:`finish_scores_incremental` + threshold.

        The coalescing scheduler's counterpart of :meth:`predict_incremental`
        — same return convention, same single-inversion guarantee.
        """
        scores = self.finish_scores_incremental(plan, cold_errors, cold_latents)
        flags = self.calibrator.predict(scores)
        if include_scores:
            return flags, scores
        return flags
