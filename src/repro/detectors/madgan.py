"""MAD-GAN: multivariate anomaly detection with a recurrent GAN.

Follows Li et al. (2019): an LSTM generator maps latent sequences to synthetic
multivariate windows, an LSTM discriminator separates real from generated
windows, and anomalies are scored with the *discrimination and reconstruction*
(DR) score — a convex combination of

* the reconstruction error after inverting the generator (finding the latent
  sequence whose generated window best matches the test window), and
* the discriminator's "fake" probability for the test window.

Hyper-parameters follow the paper's Appendix B (4 signals, sequence length 12,
sequence step 1); the epoch count defaults lower than the paper's 100 so the
full pipeline runs on CPU, and is configurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.detectors.base import AnomalyDetector, ThresholdCalibrator
from repro.nn import (
    Adam,
    BatchIterator,
    Dense,
    LSTM,
    Module,
    Parameter,
    Tensor,
    binary_cross_entropy_with_logits,
)
from repro.utils.timeseries import StandardScaler
from repro.utils.validation import check_array, check_fitted


class SequenceGenerator(Module):
    """LSTM generator: latent sequence ``(B, T, latent)`` → window ``(B, T, F)``."""

    def __init__(self, latent_dim: int, hidden_size: int, n_features: int, seed=None):
        super().__init__()
        self.latent_dim = latent_dim
        self.hidden_size = hidden_size
        self.n_features = n_features
        self.lstm = LSTM(latent_dim, hidden_size, return_sequences=True, seed=seed)
        self.head = Dense(hidden_size, n_features, seed=seed)

    def forward(self, latent) -> Tensor:
        hidden = self.lstm(latent)
        batch, timesteps, _ = hidden.shape
        flat = hidden.reshape(batch * timesteps, self.hidden_size)
        output = self.head(flat)
        return output.reshape(batch, timesteps, self.n_features)


class SequenceDiscriminator(Module):
    """LSTM discriminator: window ``(B, T, F)`` → real/fake logit ``(B, 1)``."""

    def __init__(self, n_features: int, hidden_size: int, seed=None):
        super().__init__()
        self.lstm = LSTM(n_features, hidden_size, return_sequences=False, seed=seed)
        self.head = Dense(hidden_size, 1, seed=seed)

    def forward(self, windows) -> Tensor:
        return self.head(self.lstm(windows))


@dataclass
class MADGANTrainingHistory:
    """Per-epoch generator/discriminator losses."""

    generator_losses: List[float] = field(default_factory=list)
    discriminator_losses: List[float] = field(default_factory=list)


class MADGANDetector(AnomalyDetector):
    """MAD-GAN anomaly detector with the DR anomaly score.

    Parameters
    ----------
    sequence_length, n_features:
        Window geometry (defaults follow the paper: 12 samples, 4 signals).
    latent_dim, hidden_size:
        Generator/discriminator sizes.
    epochs, batch_size, learning_rate:
        Adversarial training hyper-parameters.
    inversion_steps, inversion_learning_rate:
        Gradient steps used to invert the generator when scoring.
    reconstruction_weight:
        λ in ``DR = λ · reconstruction + (1 − λ) · discrimination``.
    quantile:
        Benign-score quantile used to calibrate the decision threshold.
    seed:
        Seed for weights, latent sampling, and batching.
    """

    name = "MAD-GAN"

    def __init__(
        self,
        sequence_length: int = 12,
        n_features: int = 4,
        latent_dim: int = 4,
        hidden_size: int = 16,
        epochs: int = 15,
        batch_size: int = 64,
        learning_rate: float = 0.005,
        inversion_steps: int = 40,
        inversion_learning_rate: float = 0.1,
        reconstruction_weight: float = 0.7,
        quantile: float = 0.95,
        max_samples: int = 3000,
        seed=0,
    ):
        if not 0.0 <= reconstruction_weight <= 1.0:
            raise ValueError("reconstruction_weight must be in [0, 1]")
        self.sequence_length = int(sequence_length)
        self.n_features = int(n_features)
        self.latent_dim = int(latent_dim)
        self.hidden_size = int(hidden_size)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.inversion_steps = int(inversion_steps)
        self.inversion_learning_rate = float(inversion_learning_rate)
        self.reconstruction_weight = float(reconstruction_weight)
        self.max_samples = int(max_samples)

        from repro.utils.rng import as_random_state

        self._rng = as_random_state(seed)
        generator_seed, discriminator_seed = self._rng.spawn(2)
        self.generator = SequenceGenerator(
            self.latent_dim, self.hidden_size, self.n_features, seed=generator_seed
        )
        self.discriminator = SequenceDiscriminator(
            self.n_features, self.hidden_size, seed=discriminator_seed
        )
        self.calibrator = ThresholdCalibrator(quantile=quantile)
        self.history_: Optional[MADGANTrainingHistory] = None
        self._scaler: Optional[StandardScaler] = None
        self._benign_reconstruction_scale: Optional[float] = None

    # ------------------------------------------------------------------ scaling
    def _scale(self, windows: np.ndarray, fit: bool = False) -> np.ndarray:
        windows = check_array(windows, "windows", ndim=3, min_samples=1)
        if windows.shape[1] != self.sequence_length or windows.shape[2] != self.n_features:
            raise ValueError(
                f"windows must have shape (n, {self.sequence_length}, {self.n_features}), "
                f"got {windows.shape}"
            )
        flat = windows.reshape(-1, self.n_features)
        if fit:
            self._scaler = StandardScaler().fit(flat)
        if self._scaler is None:
            raise RuntimeError("MADGANDetector is not fitted")
        return self._scaler.transform(flat).reshape(windows.shape)

    def _sample_latent(self, batch_size: int) -> np.ndarray:
        return self._rng.normal(
            0.0, 1.0, size=(batch_size, self.sequence_length, self.latent_dim)
        )

    # ----------------------------------------------------------------- training
    def fit(self, windows: np.ndarray, labels: Optional[np.ndarray] = None) -> "MADGANDetector":
        if labels is not None:
            labels = check_array(labels, "labels", ndim=1)
            windows = np.asarray(windows)[labels == 0]
            if len(windows) == 0:
                raise ValueError("no benign samples (label 0) to fit on")
        scaled = self._scale(np.asarray(windows, dtype=np.float64), fit=True)
        if len(scaled) > self.max_samples:
            index = self._rng.choice(len(scaled), size=self.max_samples, replace=False)
            scaled = scaled[index]

        generator_optimizer = Adam(self.generator.parameters(), learning_rate=self.learning_rate)
        discriminator_optimizer = Adam(
            self.discriminator.parameters(), learning_rate=self.learning_rate
        )
        iterator = BatchIterator(
            scaled, batch_size=self.batch_size, shuffle=True, drop_last=True, seed=self._rng.derive("batches")
        )
        history = MADGANTrainingHistory()
        for _ in range(self.epochs):
            generator_losses = []
            discriminator_losses = []
            for real_batch, _ in iterator:
                batch_size = len(real_batch)
                latent = self._sample_latent(batch_size)

                # -- discriminator step
                discriminator_optimizer.zero_grad()
                fake_batch = self.generator(Tensor(latent)).detach()
                real_logits = self.discriminator(Tensor(real_batch))
                fake_logits = self.discriminator(fake_batch)
                real_loss = binary_cross_entropy_with_logits(
                    real_logits, Tensor(np.ones((batch_size, 1)))
                )
                fake_loss = binary_cross_entropy_with_logits(
                    fake_logits, Tensor(np.zeros((batch_size, 1)))
                )
                discriminator_loss = real_loss + fake_loss
                discriminator_loss.backward()
                discriminator_optimizer.clip_gradients(5.0)
                discriminator_optimizer.step()

                # -- generator step
                generator_optimizer.zero_grad()
                self.discriminator.zero_grad()
                generated = self.generator(Tensor(latent))
                generated_logits = self.discriminator(generated)
                generator_loss = binary_cross_entropy_with_logits(
                    generated_logits, Tensor(np.ones((batch_size, 1)))
                )
                generator_loss.backward()
                generator_optimizer.clip_gradients(5.0)
                generator_optimizer.step()

                generator_losses.append(generator_loss.item())
                discriminator_losses.append(discriminator_loss.item())
            history.generator_losses.append(float(np.mean(generator_losses)))
            history.discriminator_losses.append(float(np.mean(discriminator_losses)))
        self.history_ = history

        benign_reconstruction = self._reconstruction_errors(scaled)
        self._benign_reconstruction_scale = float(np.mean(benign_reconstruction) + 1e-12)
        benign_scores = self._dr_scores(scaled, benign_reconstruction)
        self.calibrator.fit(benign_scores)
        return self

    # ------------------------------------------------------------------ scoring
    def _reconstruction_errors(self, scaled_windows: np.ndarray) -> np.ndarray:
        """Best-effort generator inversion: optimize latent sequences by gradient."""
        count = len(scaled_windows)
        latent = Parameter(self._sample_latent(count) * 0.1, name="latent")
        optimizer = Adam([latent], learning_rate=self.inversion_learning_rate)
        target = Tensor(scaled_windows)
        for _ in range(self.inversion_steps):
            optimizer.zero_grad()
            self.generator.zero_grad()
            generated = self.generator(latent)
            residual = generated - target
            loss = (residual * residual).mean()
            loss.backward()
            optimizer.step()
            # Constrain the search to the typical set of the latent prior: an
            # unbounded latent lets the generator chase arbitrary (including
            # adversarial) targets, which would destroy the reconstruction
            # signal of the DR score.
            latent.data = np.clip(latent.data, -2.5, 2.5)
        generated = self.generator(latent).numpy()
        per_timestep = np.mean((generated - scaled_windows) ** 2, axis=2)
        # A manipulation typically touches only the trailing samples of a
        # window; the max over timesteps keeps a localized discrepancy from
        # being diluted by the (well-reconstructed) rest of the window.
        return per_timestep.max(axis=1)

    def _discrimination_scores(self, scaled_windows: np.ndarray) -> np.ndarray:
        """Probability that each window is fake according to the discriminator."""
        logits = self.discriminator(Tensor(scaled_windows)).numpy().reshape(-1)
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))

    def _dr_scores(self, scaled_windows: np.ndarray, reconstruction: Optional[np.ndarray] = None) -> np.ndarray:
        if reconstruction is None:
            reconstruction = self._reconstruction_errors(scaled_windows)
        scale = self._benign_reconstruction_scale or float(np.mean(reconstruction) + 1e-12)
        normalized_reconstruction = reconstruction / scale
        fake_probability = 1.0 - self._discrimination_scores(scaled_windows)
        return (
            self.reconstruction_weight * normalized_reconstruction
            + (1.0 - self.reconstruction_weight) * fake_probability
        )

    def scores(self, windows: np.ndarray) -> np.ndarray:
        check_fitted(self, ("_scaler", "history_"))
        scaled = self._scale(np.asarray(windows, dtype=np.float64))
        return self._dr_scores(scaled)

    def predict(self, windows: np.ndarray) -> np.ndarray:
        return self.calibrator.predict(self.scores(windows))
