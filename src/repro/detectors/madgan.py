"""MAD-GAN: multivariate anomaly detection with a recurrent GAN.

Follows Li et al. (2019): an LSTM generator maps latent sequences to synthetic
multivariate windows, an LSTM discriminator separates real from generated
windows, and anomalies are scored with the *discrimination and reconstruction*
(DR) score — a convex combination of

* the reconstruction error after inverting the generator (finding the latent
  sequence whose generated window best matches the test window), and
* the discriminator's "fake" probability for the test window.

Hyper-parameters follow the paper's Appendix B (4 signals, sequence length 12,
sequence step 1); the epoch count defaults lower than the paper's 100 so the
full pipeline runs on CPU, and is configurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.detectors.base import AnomalyDetector, ThresholdCalibrator
from repro.nn import functional as F
from repro.nn import (
    Adam,
    BatchIterator,
    Dense,
    LSTM,
    Module,
    Parameter,
    Tensor,
    binary_cross_entropy_with_logits,
)
from repro.utils.timeseries import StandardScaler
from repro.utils.validation import check_array, check_fitted


class SequenceGenerator(Module):
    """LSTM generator: latent sequence ``(B, T, latent)`` → window ``(B, T, F)``."""

    def __init__(self, latent_dim: int, hidden_size: int, n_features: int, seed=None):
        super().__init__()
        self.latent_dim = latent_dim
        self.hidden_size = hidden_size
        self.n_features = n_features
        self.lstm = LSTM(latent_dim, hidden_size, return_sequences=True, seed=seed)
        self.head = Dense(hidden_size, n_features, seed=seed)

    def forward(self, latent) -> Tensor:
        hidden = self.lstm(latent)
        batch, timesteps, _ = hidden.shape
        flat = hidden.reshape(batch * timesteps, self.hidden_size)
        output = self.head(flat)
        return output.reshape(batch, timesteps, self.n_features)

    def fast_forward(self, latent: np.ndarray) -> np.ndarray:
        hidden = self.lstm.fast_forward(np.asarray(latent, dtype=np.float64))
        batch, timesteps, _ = hidden.shape
        flat = hidden.reshape(batch * timesteps, self.hidden_size)
        return self.head.fast_forward(flat).reshape(batch, timesteps, self.n_features)

    def inversion_grad(
        self, latent: np.ndarray, target: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Graph-free forward plus latent-only backward for generator inversion.

        Returns ``(generated, latent_gradient)`` where ``latent_gradient`` is
        the gradient of ``mean((generated - target) ** 2)`` with respect to
        ``latent``.  This is a hand-written BPTT through the frozen LSTM and
        head that mirrors the autodiff graph operation-for-operation (same
        clipped sigmoid, same gate math, same loss-gradient seeding), so the
        inversion loop produces the same latent trajectory as optimizing
        through the graph — without allocating a single ``Tensor`` node or
        computing any parameter gradient.
        """
        cell = self.lstm.cell
        weight_input = cell.weight_input.data
        weight_hidden = cell.weight_hidden.data
        bias = cell.bias.data
        head_weight = self.head.weight.data
        head_bias = self.head.bias.data

        latent = np.asarray(latent, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        batch, timesteps, _ = latent.shape
        size = self.hidden_size

        # ---- forward (fused input projection, saved gate activations) ----
        projections = (
            latent.reshape(batch * timesteps, self.latent_dim) @ weight_input
        ).reshape(batch, timesteps, 4 * size)
        hidden = np.zeros((batch, size))
        cell_state = np.zeros((batch, size))
        hidden_seq = np.empty((batch, timesteps, size))
        prev_cells = np.empty((batch, timesteps, size))
        gate_i = np.empty((batch, timesteps, size))
        gate_f = np.empty((batch, timesteps, size))
        gate_g = np.empty((batch, timesteps, size))
        gate_o = np.empty((batch, timesteps, size))
        tanh_cells = np.empty((batch, timesteps, size))
        for step in range(timesteps):
            gates = (projections[:, step, :] + hidden @ weight_hidden) + bias
            i = F.sigmoid(gates[:, 0:size])
            f = F.sigmoid(gates[:, size : 2 * size])
            g = np.tanh(gates[:, 2 * size : 3 * size])
            o = F.sigmoid(gates[:, 3 * size : 4 * size])
            prev_cells[:, step, :] = cell_state
            cell_state = f * cell_state + i * g
            tanh_c = np.tanh(cell_state)
            hidden = o * tanh_c
            gate_i[:, step, :] = i
            gate_f[:, step, :] = f
            gate_g[:, step, :] = g
            gate_o[:, step, :] = o
            tanh_cells[:, step, :] = tanh_c
            hidden_seq[:, step, :] = hidden

        flat = hidden_seq.reshape(batch * timesteps, size)
        generated = (flat @ head_weight + head_bias).reshape(
            batch, timesteps, self.n_features
        )

        # ---- backward, latent path only ----
        residual = generated - target
        # Seeded exactly as the autodiff `(r * r).mean()` backward: r/count
        # accumulated twice (doubling is exact in floating point).
        d_generated = residual * (1.0 / residual.size)
        d_generated = d_generated + d_generated
        d_hidden_seq = (
            d_generated.reshape(batch * timesteps, self.n_features) @ head_weight.T
        ).reshape(batch, timesteps, size)

        d_hidden = np.zeros((batch, size))
        d_cell = np.zeros((batch, size))
        d_projections = np.empty_like(projections)
        for step in range(timesteps - 1, -1, -1):
            i = gate_i[:, step, :]
            f = gate_f[:, step, :]
            g = gate_g[:, step, :]
            o = gate_o[:, step, :]
            tanh_c = tanh_cells[:, step, :]
            dh = d_hidden_seq[:, step, :] + d_hidden
            d_output = dh * tanh_c
            dc = d_cell + dh * o * (1.0 - tanh_c**2)
            d_input = dc * g
            d_forget = dc * prev_cells[:, step, :]
            d_candidate = dc * i
            d_cell = dc * f
            d_gates = np.concatenate(
                [
                    d_input * i * (1.0 - i),
                    d_forget * f * (1.0 - f),
                    d_candidate * (1.0 - g**2),
                    d_output * o * (1.0 - o),
                ],
                axis=1,
            )
            d_hidden = d_gates @ weight_hidden.T
            d_projections[:, step, :] = d_gates

        d_latent = (
            d_projections.reshape(batch * timesteps, 4 * size) @ weight_input.T
        ).reshape(latent.shape)
        return generated, d_latent


class SequenceDiscriminator(Module):
    """LSTM discriminator: window ``(B, T, F)`` → real/fake logit ``(B, 1)``."""

    def __init__(self, n_features: int, hidden_size: int, seed=None):
        super().__init__()
        self.lstm = LSTM(n_features, hidden_size, return_sequences=False, seed=seed)
        self.head = Dense(hidden_size, 1, seed=seed)

    def forward(self, windows) -> Tensor:
        return self.head(self.lstm(windows))

    def fast_forward(self, windows: np.ndarray) -> np.ndarray:
        return self.head.fast_forward(
            self.lstm.fast_forward(np.asarray(windows, dtype=np.float64))
        )


@dataclass
class MADGANTrainingHistory:
    """Per-epoch generator/discriminator losses."""

    generator_losses: List[float] = field(default_factory=list)
    discriminator_losses: List[float] = field(default_factory=list)


class MADGANDetector(AnomalyDetector):
    """MAD-GAN anomaly detector with the DR anomaly score.

    Parameters
    ----------
    sequence_length, n_features:
        Window geometry (defaults follow the paper: 12 samples, 4 signals).
    latent_dim, hidden_size:
        Generator/discriminator sizes.
    epochs, batch_size, learning_rate:
        Adversarial training hyper-parameters.
    inversion_steps, inversion_learning_rate:
        Gradient steps used to invert the generator when scoring.
    reconstruction_weight:
        λ in ``DR = λ · reconstruction + (1 − λ) · discrimination``.
    quantile:
        Benign-score quantile used to calibrate the decision threshold.
    use_fast_path:
        When True (the default) scoring runs the inference fast paths: the
        generator inversion keeps gradients only for the latent (the
        generator's parameters are frozen during the loop, skipping every
        weight-gradient computation), and the final reconstruction and the
        discriminator probabilities are computed graph-free.  Set False to
        route every scoring query through the full autodiff graph; the two
        paths agree within 1e-8 (see ``tests/test_detectors.py``).
    seed:
        Seed for weights, latent sampling, and batching.
    """

    name = "MAD-GAN"

    def __init__(
        self,
        sequence_length: int = 12,
        n_features: int = 4,
        latent_dim: int = 4,
        hidden_size: int = 16,
        epochs: int = 15,
        batch_size: int = 64,
        learning_rate: float = 0.005,
        inversion_steps: int = 40,
        inversion_learning_rate: float = 0.1,
        reconstruction_weight: float = 0.7,
        quantile: float = 0.95,
        max_samples: int = 3000,
        use_fast_path: bool = True,
        seed=0,
    ):
        if not 0.0 <= reconstruction_weight <= 1.0:
            raise ValueError("reconstruction_weight must be in [0, 1]")
        self.use_fast_path = bool(use_fast_path)
        self.sequence_length = int(sequence_length)
        self.n_features = int(n_features)
        self.latent_dim = int(latent_dim)
        self.hidden_size = int(hidden_size)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.inversion_steps = int(inversion_steps)
        self.inversion_learning_rate = float(inversion_learning_rate)
        self.reconstruction_weight = float(reconstruction_weight)
        self.max_samples = int(max_samples)

        from repro.utils.rng import as_random_state

        self._rng = as_random_state(seed)
        generator_seed, discriminator_seed = self._rng.spawn(2)
        self.generator = SequenceGenerator(
            self.latent_dim, self.hidden_size, self.n_features, seed=generator_seed
        )
        self.discriminator = SequenceDiscriminator(
            self.n_features, self.hidden_size, seed=discriminator_seed
        )
        self.calibrator = ThresholdCalibrator(quantile=quantile)
        self.history_: Optional[MADGANTrainingHistory] = None
        self._scaler: Optional[StandardScaler] = None
        self._benign_reconstruction_scale: Optional[float] = None

    # ------------------------------------------------------------------ scaling
    def _scale(self, windows: np.ndarray, fit: bool = False) -> np.ndarray:
        windows = check_array(windows, "windows", ndim=3, min_samples=1)
        if windows.shape[1] != self.sequence_length or windows.shape[2] != self.n_features:
            raise ValueError(
                f"windows must have shape (n, {self.sequence_length}, {self.n_features}), "
                f"got {windows.shape}"
            )
        flat = windows.reshape(-1, self.n_features)
        if fit:
            self._scaler = StandardScaler().fit(flat)
        if self._scaler is None:
            raise RuntimeError("MADGANDetector is not fitted")
        return self._scaler.transform(flat).reshape(windows.shape)

    def _sample_latent(self, batch_size: int) -> np.ndarray:
        return self._rng.normal(
            0.0, 1.0, size=(batch_size, self.sequence_length, self.latent_dim)
        )

    # ----------------------------------------------------------------- training
    def fit(self, windows: np.ndarray, labels: Optional[np.ndarray] = None) -> "MADGANDetector":
        if labels is not None:
            labels = check_array(labels, "labels", ndim=1)
            windows = np.asarray(windows)[labels == 0]
            if len(windows) == 0:
                raise ValueError("no benign samples (label 0) to fit on")
        scaled = self._scale(np.asarray(windows, dtype=np.float64), fit=True)
        if len(scaled) > self.max_samples:
            index = self._rng.choice(len(scaled), size=self.max_samples, replace=False)
            scaled = scaled[index]

        generator_optimizer = Adam(self.generator.parameters(), learning_rate=self.learning_rate)
        discriminator_optimizer = Adam(
            self.discriminator.parameters(), learning_rate=self.learning_rate
        )
        iterator = BatchIterator(
            scaled, batch_size=self.batch_size, shuffle=True, drop_last=True, seed=self._rng.derive("batches")
        )
        history = MADGANTrainingHistory()
        for _ in range(self.epochs):
            generator_losses = []
            discriminator_losses = []
            for real_batch, _ in iterator:
                batch_size = len(real_batch)
                latent = self._sample_latent(batch_size)

                # -- discriminator step
                discriminator_optimizer.zero_grad()
                fake_batch = self.generator(Tensor(latent)).detach()
                real_logits = self.discriminator(Tensor(real_batch))
                fake_logits = self.discriminator(fake_batch)
                real_loss = binary_cross_entropy_with_logits(
                    real_logits, Tensor(np.ones((batch_size, 1)))
                )
                fake_loss = binary_cross_entropy_with_logits(
                    fake_logits, Tensor(np.zeros((batch_size, 1)))
                )
                discriminator_loss = real_loss + fake_loss
                discriminator_loss.backward()
                discriminator_optimizer.clip_gradients(5.0)
                discriminator_optimizer.step()

                # -- generator step: the discriminator is frozen, so backward
                # skips its weight-gradient computations entirely (the same
                # gradients the old per-step discriminator.zero_grad() threw
                # away); the generator gradient is unchanged.
                generator_optimizer.zero_grad()
                self.discriminator.requires_grad_(False)
                try:
                    generated = self.generator(Tensor(latent))
                    generated_logits = self.discriminator(generated)
                    generator_loss = binary_cross_entropy_with_logits(
                        generated_logits, Tensor(np.ones((batch_size, 1)))
                    )
                    generator_loss.backward()
                finally:
                    self.discriminator.requires_grad_(True)
                generator_optimizer.clip_gradients(5.0)
                generator_optimizer.step()

                generator_losses.append(generator_loss.item())
                discriminator_losses.append(discriminator_loss.item())
            history.generator_losses.append(float(np.mean(generator_losses)))
            history.discriminator_losses.append(float(np.mean(discriminator_losses)))
        self.history_ = history

        benign_reconstruction = self._reconstruction_errors(scaled)
        self._benign_reconstruction_scale = float(np.mean(benign_reconstruction) + 1e-12)
        benign_scores = self._dr_scores(scaled, benign_reconstruction)
        self.calibrator.fit(benign_scores)
        return self

    # ------------------------------------------------------------------ scoring
    def _reconstruction_errors(
        self,
        scaled_windows: np.ndarray,
        fast_path: Optional[bool] = None,
        initial_latent: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Best-effort generator inversion: optimize latent sequences by gradient.

        With ``fast_path`` (defaulting to :attr:`use_fast_path`), every
        optimization step runs :meth:`SequenceGenerator.inversion_grad` — a
        graph-free forward plus a hand-written BPTT that computes gradients
        *only for the latent*.  No autodiff nodes are allocated and no
        parameter gradients are computed; the latent trajectory mirrors the
        graph path operation-for-operation, so the two paths agree within
        1e-8 (``tests/test_detectors.py`` pins this).

        ``initial_latent`` overrides the random latent initialization; when
        omitted, one latent sample is drawn from the detector's persistent RNG
        (so back-to-back calls start from different latents).
        """
        fast = self.use_fast_path if fast_path is None else bool(fast_path)
        count = len(scaled_windows)
        if initial_latent is None:
            initial_latent = self._sample_latent(count) * 0.1
        latent = Parameter(np.array(initial_latent, dtype=np.float64, copy=True), name="latent")
        optimizer = Adam([latent], learning_rate=self.inversion_learning_rate)
        # Constraining the latent to the typical set of its prior is part of
        # both loops: an unbounded latent lets the generator chase arbitrary
        # (including adversarial) targets, which would destroy the
        # reconstruction signal of the DR score.
        if fast:
            for _ in range(self.inversion_steps):
                _, latent.grad = self.generator.inversion_grad(latent.data, scaled_windows)
                optimizer.step()
                latent.data = np.clip(latent.data, -2.5, 2.5)
            generated = self.generator.fast_forward(latent.data)
        else:
            target = Tensor(scaled_windows)
            for _ in range(self.inversion_steps):
                optimizer.zero_grad()
                self.generator.zero_grad()
                generated = self.generator(latent)
                residual = generated - target
                loss = (residual * residual).mean()
                loss.backward()
                optimizer.step()
                latent.data = np.clip(latent.data, -2.5, 2.5)
            generated = self.generator(latent).numpy()
        per_timestep = np.mean((generated - scaled_windows) ** 2, axis=2)
        # A manipulation typically touches only the trailing samples of a
        # window; the max over timesteps keeps a localized discrepancy from
        # being diluted by the (well-reconstructed) rest of the window.
        return per_timestep.max(axis=1)

    def _discrimination_scores(self, scaled_windows: np.ndarray) -> np.ndarray:
        """Probability that each window is fake according to the discriminator."""
        if self.use_fast_path:
            logits = self.discriminator.predict(scaled_windows).reshape(-1)
        else:
            logits = self.discriminator(Tensor(scaled_windows)).numpy().reshape(-1)
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))

    def _dr_scores(self, scaled_windows: np.ndarray, reconstruction: Optional[np.ndarray] = None) -> np.ndarray:
        if reconstruction is None:
            reconstruction = self._reconstruction_errors(scaled_windows)
        scale = self._benign_reconstruction_scale or float(np.mean(reconstruction) + 1e-12)
        normalized_reconstruction = reconstruction / scale
        fake_probability = 1.0 - self._discrimination_scores(scaled_windows)
        return (
            self.reconstruction_weight * normalized_reconstruction
            + (1.0 - self.reconstruction_weight) * fake_probability
        )

    def scores(self, windows: np.ndarray) -> np.ndarray:
        check_fitted(self, ("_scaler", "history_"))
        scaled = self._scale(np.asarray(windows, dtype=np.float64))
        return self._dr_scores(scaled)

    def predict(self, windows: np.ndarray) -> np.ndarray:
        return self.calibrator.predict(self.scores(windows))
