"""Streaming adapter turning any static detector into a per-tick monitor.

The paper's detectors are *static*: they score pre-materialized windows or
samples.  The deployment they model is *online* — a pump-side monitor sees CGM
measurements one at a time and must flag the manipulated trace as it streams.
:class:`StreamingDetector` closes that gap: it ring-buffers the incoming
samples and feeds the underlying detector exactly the view it was trained on
(the final measurement for ``unit="sample"`` detectors such as kNN and
OneClassSVM, the whole multivariate window for ``unit="window"`` detectors
such as MAD-GAN).  Verdicts are therefore *identical* to running the offline
``predict`` on the same windows — pinned by ``tests/test_serving.py``.

The adapter holds one ring per stream; the underlying detector object may be
shared by many adapters, which is what lets the serving scheduler coalesce
the per-tick views of every session into one batched ``predict`` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.utils.timeseries import SampleRing

#: Detection units the adapter understands (mirrors eval.experiments.DetectorSpec).
STREAM_UNITS = ("sample", "window")


@dataclass
class StreamVerdict:
    """Outcome of one streamed measurement.

    Attributes
    ----------
    tick:
        0-based index of the measurement within the stream.
    warming:
        True while the adapter has not yet buffered a full window (only
        possible for ``unit="window"`` detectors); ``flagged`` is None then.
    flagged:
        Detector decision for this tick (1 = malicious) once warm.
    score:
        Continuous anomaly score when the adapter was built with
        ``include_scores=True``; None otherwise.
    """

    tick: int
    warming: bool
    flagged: Optional[bool] = None
    score: Optional[float] = None


class StreamingDetector:
    """Give a fitted :class:`AnomalyDetector` an ``update(sample) -> verdict`` API.

    Parameters
    ----------
    detector:
        A *fitted* detector.  May be shared across many adapters/streams.
    unit:
        ``"sample"`` feeds the detector single-measurement views ``(1, 1, F)``
        (the paper's per-measurement kNN/OC-SVM flags); ``"window"`` feeds it
        full ``(1, history, F)`` windows (MAD-GAN).
    history:
        Ring length for ``unit="window"`` (ignored for sample detectors).
    include_scores:
        Also query :meth:`AnomalyDetector.scores` each tick (one extra
        detector call per tick; off by default).
    """

    def __init__(
        self,
        detector: AnomalyDetector,
        unit: str = "sample",
        history: int = 12,
        include_scores: bool = False,
    ):
        if unit not in STREAM_UNITS:
            raise ValueError(f"unit must be one of {STREAM_UNITS}, got {unit!r}")
        if history <= 0:
            raise ValueError("history must be positive")
        self.detector = detector
        self.unit = unit
        self.history = int(history)
        self.include_scores = bool(include_scores)
        self._ring = SampleRing(self.history)
        self._ticks = 0

    # ------------------------------------------------------------------- state
    @property
    def ticks(self) -> int:
        """Number of samples consumed so far."""
        return self._ticks

    def reset(self) -> None:
        """Forget all buffered history (the detector itself is untouched)."""
        self._ring.reset()
        self._ticks = 0

    # ------------------------------------------------------------------ ticking
    def prepare(self, sample: np.ndarray):
        """Consume one raw sample; return ``(tick, view)``.

        ``view`` is the ``(1, T, F)`` array the detector must score for this
        tick, or None while the window ring is still warming up.  Splitting
        consumption from scoring lets a scheduler stack the views of many
        streams into one batched ``detector.predict`` call; :meth:`update` is
        the self-contained single-stream composition of the two halves.
        """
        sample = np.asarray(sample, dtype=np.float64)
        if sample.ndim != 1:
            raise ValueError(f"sample must be a 1-D feature vector, got shape {sample.shape}")
        tick = self._ticks
        self._ticks += 1
        if self.unit == "sample":
            return tick, sample[np.newaxis, np.newaxis, :]
        self._ring.push(sample)
        window = self._ring.window()
        return tick, None if window is None else window[np.newaxis]

    def window(self) -> Optional[np.ndarray]:
        """The current ``(history, F)`` window in time order, or None if warming."""
        if self.unit == "sample":
            return None
        return self._ring.window()

    def update(self, sample: np.ndarray) -> StreamVerdict:
        """Consume one sample and return this tick's verdict."""
        tick, view = self.prepare(sample)
        if view is None:
            return StreamVerdict(tick=tick, warming=True)
        flagged = bool(self.detector.predict(view)[0])
        score = float(self.detector.scores(view)[0]) if self.include_scores else None
        return StreamVerdict(tick=tick, warming=False, flagged=flagged, score=score)
