"""Streaming adapter turning any static detector into a per-tick monitor.

The paper's detectors are *static*: they score pre-materialized windows or
samples.  The deployment they model is *online* — a pump-side monitor sees CGM
measurements one at a time and must flag the manipulated trace as it streams.
:class:`StreamingDetector` closes that gap: it ring-buffers the incoming
samples and feeds the underlying detector exactly the view it was trained on
(the final measurement for ``unit="sample"`` detectors such as kNN and
OneClassSVM, the whole multivariate window for ``unit="window"`` detectors
such as MAD-GAN, LSTM-VAE, and the Gaussian HMM).  Verdicts are therefore
*identical* to running the offline ``predict`` on the same windows — pinned
by ``tests/test_serving.py`` and ``tests/test_detectors_vae_hmm.py``
(per-detector score tolerances: ``docs/detectors.md``).

Detectors exposing the incremental API (``make_inversion_state`` +
``scores_incremental``) are auto-upgraded to O(1)-per-tick scoring with one
carried state object per stream — MAD-GAN's warm-started latent, the
LSTM-VAE's projection ring, the HMM's partial-alpha band.

The adapter holds one ring per stream; the underlying detector object may be
shared by many adapters, which is what lets the serving scheduler coalesce
the per-tick views of every session into one batched ``predict`` call.

Adapter state (ring, warming counter, carried incremental state — including
MAD-GAN's ``InversionState`` RNG position) pickles exactly, so scheduler
snapshots (``repro.serving.recovery``) resume streaming verdicts bitwise;
the shared-detector aliasing above survives restore because the whole
scheduler state is one pickle graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.utils.timeseries import SampleRing

#: Detection units the adapter understands (mirrors eval.experiments.DetectorSpec).
STREAM_UNITS = ("sample", "window")


@dataclass
class StreamVerdict:
    """Outcome of one streamed measurement.

    Attributes
    ----------
    tick:
        0-based index of the measurement within the stream.
    warming:
        True while the adapter has not yet buffered a full window (only
        possible for ``unit="window"`` detectors); ``flagged`` is None then.
    flagged:
        Detector decision for this tick (1 = malicious) once warm.  None on
        a degraded tick whose detector query failed (see ``degraded``).
    score:
        Continuous anomaly score when the adapter was built with
        ``include_scores=True``; None otherwise.
    degraded:
        True when the verdict should not be trusted at face value: the
        stream's inversion-divergence watchdog tripped (``flagged`` is
        still the detector's output) or the detector query itself failed
        under a health-enabled scheduler (``flagged`` is None).  A voting
        ensemble should renormalize around degraded members
        (:meth:`repro.detectors.ensemble.VotingEnsembleDetector.predict`
        with ``exclude``).
    """

    tick: int
    warming: bool
    flagged: Optional[bool] = None
    score: Optional[float] = None
    degraded: bool = False


class StreamingDetector:
    """Give a fitted :class:`AnomalyDetector` an ``update(sample) -> verdict`` API.

    Parameters
    ----------
    detector:
        A *fitted* detector.  May be shared across many adapters/streams.
    unit:
        ``"sample"`` feeds the detector single-measurement views ``(1, 1, F)``
        (the paper's per-measurement kNN/OC-SVM flags); ``"window"`` feeds it
        full ``(1, history, F)`` windows (MAD-GAN).
    history:
        Ring length for ``unit="window"`` (ignored for sample detectors).
    include_scores:
        Also report the continuous anomaly score each tick.  For plain
        detectors this is one extra :meth:`AnomalyDetector.scores` call per
        tick; incremental detectors reuse the very scores their flags were
        thresholded from, at no extra cost.
    incremental:
        Thread a per-stream carry-over state through the detector's
        incremental scoring API (``make_inversion_state`` /
        ``scores_incremental`` / ``predict_incremental``, e.g. warm-started
        MAD-GAN inversion).  ``None`` (the default) auto-enables it for
        ``unit="window"`` detectors that expose the API; ``False`` forces
        the stateless cold path; ``True`` raises if the detector cannot do
        it.  The adapter owns exactly one state — one adapter per stream.
    divergence_watchdog:
        Mark verdicts ``degraded`` once the stream's incremental inversion
        has fallen back to a cold re-anchor this many *consecutive* ticks
        (:attr:`repro.detectors.madgan.InversionState.consecutive_fallbacks`).
        A stream whose warm inversion keeps diverging is tracking its
        window badly — its scores still obey the no-inflation fallback
        guarantee, but a health-aware consumer should weigh them down.
        None (the default) disables the watchdog; ignored for
        non-incremental adapters.
    """

    def __init__(
        self,
        detector: AnomalyDetector,
        unit: str = "sample",
        history: int = 12,
        include_scores: bool = False,
        incremental: Optional[bool] = None,
        divergence_watchdog: Optional[int] = None,
    ):
        if unit not in STREAM_UNITS:
            raise ValueError(f"unit must be one of {STREAM_UNITS}, got {unit!r}")
        if history <= 0:
            raise ValueError("history must be positive")
        supports_incremental = (
            unit == "window"
            and hasattr(detector, "scores_incremental")
            # A reference-configured detector (use_fast_path=False) must not
            # be silently moved onto the fast-path-only incremental engine.
            and getattr(detector, "use_fast_path", True)
        )
        if incremental is None:
            incremental = supports_incremental
        elif incremental and not supports_incremental:
            raise ValueError(
                "incremental streaming requires unit='window' and a "
                "fast-path detector exposing the incremental scoring API "
                "(scores_incremental)"
            )
        if divergence_watchdog is not None and divergence_watchdog < 1:
            raise ValueError("divergence_watchdog must be >= 1 or None")
        self.detector = detector
        self.unit = unit
        self.history = int(history)
        self.include_scores = bool(include_scores)
        self.incremental = bool(incremental)
        self.divergence_watchdog = (
            None if divergence_watchdog is None else int(divergence_watchdog)
        )
        self._inversion_state = detector.make_inversion_state() if self.incremental else None
        self._ring = SampleRing(self.history)
        self._ticks = 0
        # (ticks, fallbacks) high-water mark for drain_inversion_counts().
        self._inversion_mark = (0, 0)

    # ------------------------------------------------------------------- state
    @property
    def ticks(self) -> int:
        """Number of samples consumed so far."""
        return self._ticks

    @property
    def inversion_state(self):
        """The per-stream incremental carry-over (None for stateless adapters)."""
        return self._inversion_state

    def watchdog_tripped(self) -> bool:
        """True when the inversion-divergence watchdog says "degraded".

        Always False without ``divergence_watchdog`` or for non-incremental
        adapters; otherwise compares the stream's consecutive cold-fallback
        count against the configured threshold.
        """
        if self.divergence_watchdog is None or self._inversion_state is None:
            return False
        consecutive = getattr(self._inversion_state, "consecutive_fallbacks", 0)
        return consecutive >= self.divergence_watchdog

    def reset(self) -> None:
        """Forget all buffered history (the detector itself is untouched)."""
        self._ring.reset()
        self._ticks = 0
        if self._inversion_state is not None:
            self._inversion_state.reset()
        self._inversion_mark = (0, 0)

    def drain_inversion_counts(self) -> Optional[Tuple[int, int, int]]:
        """Inversion-activity deltas since the previous drain, or None.

        Returns ``(scored, fallbacks, deferred)`` for incremental adapters:
        windows scored through the stream's carry-over state, how many of
        them fell back to a cold re-anchor (warm ticks are the difference),
        and whether the stream is currently awaiting a deferred cold
        re-anchor (0/1).  All three are deterministic event counts read off
        :class:`~repro.detectors.madgan.InversionState`; the scheduler feeds
        them into ``detector.inversion_*`` counters after each query.
        Stateless adapters return None.
        """
        state = self._inversion_state
        if state is None:
            return None
        marked_ticks, marked_fallbacks = self._inversion_mark
        self._inversion_mark = (state.ticks, state.fallbacks)
        return (
            state.ticks - marked_ticks,
            state.fallbacks - marked_fallbacks,
            1 if state.pending_cold else 0,
        )

    # ------------------------------------------------------------------ ticking
    def prepare(self, sample: np.ndarray):
        """Consume one raw sample; return ``(tick, view)``.

        ``view`` is the ``(1, T, F)`` array the detector must score for this
        tick, or None while the window ring is still warming up.  Splitting
        consumption from scoring lets a scheduler stack the views of many
        streams into one batched ``detector.predict`` call; :meth:`update` is
        the self-contained single-stream composition of the two halves.
        """
        sample = np.asarray(sample, dtype=np.float64)
        if sample.ndim != 1:
            raise ValueError(f"sample must be a 1-D feature vector, got shape {sample.shape}")
        tick = self._ticks
        self._ticks += 1
        if self.unit == "sample":
            return tick, sample[np.newaxis, np.newaxis, :]
        self._ring.push(sample)
        window = self._ring.window()
        return tick, None if window is None else window[np.newaxis]

    def window(self) -> Optional[np.ndarray]:
        """The current ``(history, F)`` window in time order, or None if warming."""
        if self.unit == "sample":
            return None
        return self._ring.window()

    def update(self, sample: np.ndarray) -> StreamVerdict:
        """Consume one raw sample and return this tick's verdict.

        Parameters
        ----------
        sample:
            ``(n_features,)`` raw (unscaled) measurement — **sample** units;
            the adapter assembles the detector's view itself.

        Returns
        -------
        A :class:`StreamVerdict`.  ``warming=True`` (and ``flagged=None``)
        while a ``unit="window"`` adapter has buffered fewer than ``history``
        samples; afterwards ``flagged`` mirrors the offline
        ``detector.predict`` on the same view (identical for stateless
        detectors; within the documented warm-start tolerance for
        incremental ones, whose state advances exactly once per call).
        """
        tick, view = self.prepare(sample)
        if view is None:
            return StreamVerdict(tick=tick, warming=True)
        if self.incremental:
            flags, scores = self.detector.predict_incremental(
                view, [self._inversion_state], include_scores=True
            )
            score = float(scores[0]) if self.include_scores else None
            return StreamVerdict(
                tick=tick,
                warming=False,
                flagged=bool(flags[0]),
                score=score,
                degraded=self.watchdog_tripped(),
            )
        flagged = bool(self.detector.predict(view)[0])
        score = float(self.detector.scores(view)[0]) if self.include_scores else None
        return StreamVerdict(tick=tick, warming=False, flagged=flagged, score=score)
