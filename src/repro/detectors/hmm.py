"""Gaussian-emission HMM anomaly detector scored by window log-likelihood.

The cheap non-NN contrast point of the detector family (exemplar: the
hrl-assistive ``learning_hmm`` likelihood classifier): a ``n_states``-state
hidden Markov model with diagonal-Gaussian emissions is fitted to benign
windows by Baum-Welch (scaled forward-backward), and a window's anomaly score
is its negative log-likelihood under the model — an attacked window walks off
the benign state manifold and its forward probabilities collapse.

Every scoring path is deterministic and built from row-independent
broadcast-reduce kernels (no BLAS matmuls whose rounding depends on batch
shape), so the streaming forward band (:class:`HMMStreamState`) reproduces
the offline :meth:`GaussianHMMDetector.scores` **bitwise**, and sharded
serving layouts are bitwise-invariant — the strongest parity class in the
detector tolerance table (``docs/detectors.md``).
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.detectors.base import AnomalyDetector, ThresholdCalibrator
from repro.nn.fused import LOG_2PI
from repro.utils.rng import as_random_state
from repro.utils.timeseries import StandardScaler
from repro.utils.validation import check_array, check_fitted

#: Emission-probability floor shared by every forward pass.  An extreme
#: anomaly can drive all state densities to exactly 0.0, which would poison
#: the forward recursion with NaNs that (unlike the per-window offline
#: restart) a streaming band carries into later windows; flooring keeps the
#: recursion finite — such a window scores log-likelihood ≈ −700/step, far
#: beyond any calibrated threshold — and keeps both paths bitwise identical.
EMISSION_FLOOR = 1e-300


class HMMStreamState:
    """Per-stream forward-algorithm band for O(1)-amortized streaming scoring.

    A window's likelihood is a forward recursion restarted at the window
    start, and the window start moves every tick — so the state maintains one
    *partial* forward per overlapping window: a band of up to
    ``sequence_length − 1`` scaled alpha vectors ordered oldest-first, each
    with its accumulated log-scale sum.  A tick advances the whole band with
    the newest sample (one broadcast-reduce over the transition matrix),
    starts a fresh forward at that sample, and the band's oldest entry — now
    a full-window forward — yields the tick's score.  Per-tick work is
    ``O(sequence_length · n_states²)`` regardless of stream length.

    The counters mirror :class:`repro.detectors.madgan.InversionState` so the
    streaming adapter's drain/watchdog plumbing works unchanged (the HMM path
    is deterministic: ``fallbacks``/``pending_cold`` stay 0 forever).
    """

    __slots__ = (
        "alphas",
        "logliks",
        "filled",
        "ticks",
        "fallbacks",
        "pending_cold",
        "consecutive_fallbacks",
    )

    def __init__(self, band_size: int, n_states: int):
        if band_size <= 0 or n_states <= 0:
            raise ValueError("band_size and n_states must be positive")
        self.alphas = np.zeros((band_size, n_states))
        self.logliks = np.zeros(band_size)
        self.filled = 0
        self.ticks = 0
        self.fallbacks = 0
        self.pending_cold = 0
        self.consecutive_fallbacks = 0

    def reset(self) -> None:
        """Empty the band; the next call re-seeds from a full window."""
        self.alphas[:] = 0.0
        self.logliks[:] = 0.0
        self.filled = 0
        self.ticks = 0
        self.fallbacks = 0
        self.pending_cold = 0
        self.consecutive_fallbacks = 0


class GaussianHMMDetector(AnomalyDetector):
    """HMM-likelihood detector fitted by Baum-Welch on benign windows.

    Parameters
    ----------
    sequence_length, n_features:
        Window geometry (paper defaults: 12 samples, 4 signals).
    n_states:
        Number of hidden states.
    n_iter:
        Baum-Welch iterations.  The per-iteration data log-likelihood is
        recorded in ``loglik_history_`` and is monotonically non-decreasing
        (the EM fixed-point property ``tests/test_detectors_vae_hmm.py``
        pins).
    var_floor:
        Lower bound added to every emission variance in the M-step — keeps
        densities finite when a state collapses onto near-constant frames.
    self_transition:
        Initial probability mass on the diagonal of the transition matrix
        (the rest is spread uniformly); benign physiology dwells in regimes,
        so a sticky initialization converges in fewer iterations.
    quantile:
        Benign-score quantile calibrating the decision threshold.
    seed:
        Seed for the emission-mean initialization (frames drawn from the
        training set).  Fitting is deterministic given the seed; scoring
        consumes no randomness at all.
    """

    name = "HMM"
    #: Scoring has no slow/reference twin — the flag exists so the streaming
    #: adapter's fast-path auto-enable treats the HMM like the other brains.
    use_fast_path = True

    def __init__(
        self,
        sequence_length: int = 12,
        n_features: int = 4,
        n_states: int = 4,
        n_iter: int = 10,
        var_floor: float = 1e-3,
        self_transition: float = 0.8,
        quantile: float = 0.95,
        max_samples: int = 3000,
        seed=0,
    ):
        if n_states <= 0:
            raise ValueError("n_states must be positive")
        if n_iter <= 0:
            raise ValueError("n_iter must be positive")
        if var_floor <= 0:
            raise ValueError("var_floor must be positive")
        if not 0.0 < self_transition < 1.0:
            raise ValueError("self_transition must be in (0, 1)")
        self.sequence_length = int(sequence_length)
        self.n_features = int(n_features)
        self.n_states = int(n_states)
        self.n_iter = int(n_iter)
        self.var_floor = float(var_floor)
        self.self_transition = float(self_transition)
        self.max_samples = int(max_samples)
        self._rng = as_random_state(seed)
        self.calibrator = ThresholdCalibrator(quantile=quantile)
        self._scaler: Optional[StandardScaler] = None
        self.startprob_: Optional[np.ndarray] = None
        self.transmat_: Optional[np.ndarray] = None
        self.means_: Optional[np.ndarray] = None
        self.vars_: Optional[np.ndarray] = None
        self.loglik_history_: Optional[List[float]] = None

    # ------------------------------------------------------------------ scaling
    def _scale(self, windows: np.ndarray, fit: bool = False) -> np.ndarray:
        windows = check_array(windows, "windows", ndim=3, min_samples=1)
        if windows.shape[1] != self.sequence_length or windows.shape[2] != self.n_features:
            raise ValueError(
                f"windows must have shape (n, {self.sequence_length}, {self.n_features}), "
                f"got {windows.shape}"
            )
        flat = windows.reshape(-1, self.n_features)
        if fit:
            self._scaler = StandardScaler().fit(flat)
        if self._scaler is None:
            raise RuntimeError("GaussianHMMDetector is not fitted")
        return self._scaler.transform(flat).reshape(windows.shape)

    # ---------------------------------------------------------------- emissions
    def _emission_probs(self, frames: np.ndarray) -> np.ndarray:
        """Per-state diagonal-Gaussian densities for ``(..., n_features)`` frames.

        Pure elementwise/broadcast arithmetic — each frame's row of the
        result is computed independently of how many other frames share the
        call, which is what makes batched offline scoring and the one-sample
        streaming advance bitwise identical.
        """
        diff = frames[..., np.newaxis, :] - self.means_
        log_prob = -0.5 * (
            self.n_features * LOG_2PI
            + np.log(self.vars_).sum(axis=-1)
            + (diff * diff / self.vars_).sum(axis=-1)
        )
        return np.maximum(np.exp(log_prob), EMISSION_FLOOR)

    @staticmethod
    def _advance(alphas: np.ndarray, transmat: np.ndarray, probs: np.ndarray):
        """One scaled forward step for a stack of alpha rows.

        ``alphas`` is ``(m, n_states)``; the transition product is the
        broadcast-reduce ``(alphas[:, :, None] * A).sum(axis=1)`` — NOT a
        BLAS matmul, whose rounding would depend on ``m`` and break the
        bitwise streaming/offline/sharded equivalence.  Returns the
        normalized alphas and the per-row scale ``c`` (its log accumulates
        into the window log-likelihood).
        """
        advanced = (alphas[:, :, np.newaxis] * transmat).sum(axis=1) * probs
        scale = advanced.sum(axis=1)
        return advanced / scale[:, np.newaxis], scale

    # ----------------------------------------------------------------- training
    def fit(self, windows: np.ndarray, labels: Optional[np.ndarray] = None, obs=None) -> "GaussianHMMDetector":
        """Baum-Welch on benign windows; calibrate the NLL threshold.

        ``labels`` (optional) filters to benign rows (label 0).  ``obs``
        threads an :class:`~repro.obs.Observer` into the EM loop
        (``train.steps_total`` / ``train.step_batch`` per iteration); None
        records nothing and changes no arithmetic.
        """
        if labels is not None:
            labels = check_array(labels, "labels", ndim=1)
            windows = np.asarray(windows)[labels == 0]
            if len(windows) == 0:
                raise ValueError("no benign samples (label 0) to fit on")
        scaled = self._scale(np.asarray(windows, dtype=np.float64), fit=True)
        if len(scaled) > self.max_samples:
            index = self._rng.choice(len(scaled), size=self.max_samples, replace=False)
            scaled = scaled[index]
        count, timesteps, n_features = scaled.shape
        n_states = self.n_states

        frames = scaled.reshape(-1, n_features)
        chosen = self._rng.choice(len(frames), size=n_states, replace=False)
        self.means_ = frames[chosen].copy()
        self.vars_ = np.tile(frames.var(axis=0) + self.var_floor, (n_states, 1))
        self.startprob_ = np.full(n_states, 1.0 / n_states)
        off_diagonal = (1.0 - self.self_transition) / n_states
        self.transmat_ = np.full((n_states, n_states), off_diagonal) + (
            self.self_transition * np.eye(n_states)
        )
        self.transmat_ /= self.transmat_.sum(axis=1, keepdims=True)

        history: List[float] = []
        for _ in range(self.n_iter):
            loglik = self._em_iteration(scaled)
            history.append(loglik)
            if obs is not None:
                obs.registry.inc("train.steps_total")
                obs.registry.observe("train.step_batch", count)
        self.loglik_history_ = history

        benign_scores = -self._window_logliks(scaled)
        self.calibrator.fit(benign_scores)
        return self

    def _em_iteration(self, scaled: np.ndarray) -> float:
        """One scaled forward-backward E-step + M-step; returns the pre-update log-likelihood."""
        count, timesteps, n_features = scaled.shape
        n_states = self.n_states
        probs = self._emission_probs(scaled)  # (n, T, K)

        alphas = np.empty((count, timesteps, n_states))
        scales = np.empty((count, timesteps))
        alpha = self.startprob_ * probs[:, 0]
        scale = alpha.sum(axis=1)
        alphas[:, 0] = alpha / scale[:, np.newaxis]
        scales[:, 0] = scale
        for step in range(1, timesteps):
            alphas[:, step], scales[:, step] = self._advance(
                alphas[:, step - 1], self.transmat_, probs[:, step]
            )
        loglik = float(np.log(scales).sum())

        betas = np.empty((count, timesteps, n_states))
        betas[:, -1] = 1.0
        for step in range(timesteps - 2, -1, -1):
            downstream = probs[:, step + 1] * betas[:, step + 1]
            betas[:, step] = (self.transmat_ * downstream[:, np.newaxis, :]).sum(axis=2) / scales[
                :, step + 1, np.newaxis
            ]

        gamma = alphas * betas
        gamma /= gamma.sum(axis=2, keepdims=True)
        # xi[t, i, j] ∝ alpha_t[i] · A[i, j] · b_{t+1}[j] · beta_{t+1}[j]
        xi = (
            alphas[:, :-1, :, np.newaxis]
            * self.transmat_
            * (probs[:, 1:] * betas[:, 1:])[:, :, np.newaxis, :]
            / scales[:, 1:, np.newaxis, np.newaxis]
        )

        self.startprob_ = gamma[:, 0].mean(axis=0)
        self.startprob_ /= self.startprob_.sum()
        transition_counts = xi.sum(axis=(0, 1))
        self.transmat_ = transition_counts / transition_counts.sum(axis=1, keepdims=True)
        flat_gamma = gamma.reshape(-1, n_states)
        flat_frames = scaled.reshape(-1, n_features)
        weights = flat_gamma.sum(axis=0)
        self.means_ = (flat_gamma.T @ flat_frames) / weights[:, np.newaxis]
        centered = flat_frames[:, np.newaxis, :] - self.means_
        self.vars_ = (
            (flat_gamma[:, :, np.newaxis] * centered * centered).sum(axis=0)
            / weights[:, np.newaxis]
        ) + self.var_floor
        return loglik

    # ------------------------------------------------------------------ scoring
    def _window_logliks(self, scaled: np.ndarray) -> np.ndarray:
        """Scaled-forward log-likelihood of each ``(T, F)`` window, batched.

        The scalar additions per window follow the exact tick order the
        streaming band uses (one ``log c`` per consumed sample), so the two
        paths are bitwise identical.
        """
        count, timesteps, _ = scaled.shape
        probs = self._emission_probs(scaled)
        logliks = np.zeros(count)
        alpha = self.startprob_ * probs[:, 0]
        scale = alpha.sum(axis=1)
        alpha = alpha / scale[:, np.newaxis]
        logliks += np.log(scale)
        for step in range(1, timesteps):
            alpha, scale = self._advance(alpha, self.transmat_, probs[:, step])
            logliks += np.log(scale)
        return logliks

    def scores(self, windows: np.ndarray) -> np.ndarray:
        """Negative window log-likelihood, larger = more anomalous.

        Deterministic, allocation-light, and row-independent: repeated calls,
        any batch composition, and every sharded layout return bitwise
        identical scores.
        """
        check_fitted(self, ("_scaler", "loglik_history_"))
        scaled = self._scale(np.asarray(windows, dtype=np.float64))
        return -self._window_logliks(scaled)

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Binary decisions for raw windows: 1 = anomalous (see :meth:`scores`)."""
        return self.calibrator.predict(self.scores(windows))

    # ----------------------------------------------------------- incremental API
    def make_inversion_state(self) -> HMMStreamState:
        """Fresh per-stream forward band for :meth:`scores_incremental`."""
        return HMMStreamState(max(self.sequence_length - 1, 1), self.n_states)

    def _advance_stream(self, state: HMMStreamState, frame: np.ndarray) -> Optional[float]:
        """Advance one stream's band by one sample; return the emitted log-likelihood.

        Returns None while the band is still growing (fewer than
        ``sequence_length`` samples consumed since the last reset).
        """
        probs = self._emission_probs(frame[np.newaxis])[0]
        band_size = self.sequence_length - 1
        emitted: Optional[float] = None
        filled = state.filled
        if filled:
            advanced, scale = self._advance(state.alphas[:filled], self.transmat_, probs)
            state.alphas[:filled] = advanced
            state.logliks[:filled] += np.log(scale)
        if filled == band_size:
            # The oldest entry has now consumed a full window: emit its score
            # and retire it.
            emitted = float(state.logliks[0])
            state.alphas[:-1] = state.alphas[1:]
            state.logliks[:-1] = state.logliks[1:]
            filled -= 1
        fresh = self.startprob_ * probs
        scale = fresh.sum()
        state.alphas[filled] = fresh / scale
        state.logliks[filled] = np.log(scale)
        state.filled = filled + 1
        return emitted

    def scores_incremental(
        self, windows: np.ndarray, states: Sequence[HMMStreamState]
    ) -> np.ndarray:
        """Streaming negative log-likelihoods via per-stream forward bands.

        Parameters
        ----------
        windows:
            ``(n, sequence_length, n_features)`` raw windows, one per stream,
            each the stream's current sliding window (shifted by exactly one
            sample since that stream's previous call).
        states:
            One :class:`HMMStreamState` per window, aligned by position and
            updated in place.  A stream's first call (empty band) replays the
            whole window through the band — identical arithmetic to the
            offline forward — and later calls advance with just the newest
            sample: O(1) work per tick.

        Scores are **bitwise equal** to :meth:`scores` on the same windows
        (``check_parity.run_detector_family_smoke`` gates this).
        """
        check_fitted(self, ("_scaler", "loglik_history_"))
        windows = np.asarray(windows, dtype=np.float64)
        if len(windows) != len(states):
            raise ValueError("windows and states must have the same length")
        scaled = self._scale(windows)
        scores = np.empty(len(scaled))
        for index, state in enumerate(states):
            if state.filled == 0:
                # Cold seed: replay the full window sample-by-sample; the
                # final advance emits the full-window likelihood.
                emitted = None
                for step in range(self.sequence_length):
                    emitted = self._advance_stream(state, scaled[index, step])
            else:
                emitted = self._advance_stream(state, scaled[index, -1])
            if emitted is None:
                raise RuntimeError("forward band failed to emit a full-window score")
            scores[index] = -emitted
            state.ticks += 1
        return scores

    def predict_incremental(
        self,
        windows: np.ndarray,
        states: Sequence[HMMStreamState],
        include_scores: bool = False,
    ):
        """Binary decisions via :meth:`scores_incremental` (one band advance).

        Returns the ``(n,)`` int flag array, or ``(flags, scores)`` when
        ``include_scores`` is True.
        """
        scores = self.scores_incremental(windows, states)
        flags = self.calibrator.predict(scores)
        if include_scores:
            return flags, scores
        return flags

    # -------------------------------------------------------------- addressing
    def state_hash(self) -> str:
        """Content address over HMM parameters, scaler, and threshold."""
        check_fitted(self, ("_scaler", "loglik_history_"))
        digest = hashlib.sha256()
        for array in (
            self.startprob_,
            self.transmat_,
            self.means_,
            self.vars_,
            self._scaler.mean_,
            self._scaler.std_,
        ):
            digest.update(str(np.asarray(array).shape).encode())
            digest.update(np.ascontiguousarray(array).tobytes())
        digest.update(np.float64(self.calibrator.threshold_ or 0.0).tobytes())
        return digest.hexdigest()
