"""Static anomaly detectors (kNN, OneClassSVM, MAD-GAN, ensemble) and the
per-tick streaming adapter used by :mod:`repro.serving`."""

from repro.detectors.base import AnomalyDetector, ScaledDetectorMixin, ThresholdCalibrator
from repro.detectors.knn import KNNClassifierDetector, KNNDistanceDetector, minkowski_distances
from repro.detectors.ocsvm import OneClassSVMDetector, kernel_matrix
from repro.detectors.madgan import (
    InversionState,
    MADGANDetector,
    MADGANTrainingHistory,
    SequenceDiscriminator,
    SequenceGenerator,
)
from repro.detectors.ensemble import VotingEnsembleDetector
from repro.detectors.streaming import StreamingDetector, StreamVerdict

__all__ = [
    "AnomalyDetector",
    "ScaledDetectorMixin",
    "ThresholdCalibrator",
    "KNNClassifierDetector",
    "KNNDistanceDetector",
    "minkowski_distances",
    "OneClassSVMDetector",
    "kernel_matrix",
    "InversionState",
    "MADGANDetector",
    "MADGANTrainingHistory",
    "SequenceGenerator",
    "SequenceDiscriminator",
    "VotingEnsembleDetector",
    "StreamingDetector",
    "StreamVerdict",
]
