"""Static anomaly detectors: kNN, OneClassSVM, MAD-GAN, and an ensemble."""

from repro.detectors.base import AnomalyDetector, ScaledDetectorMixin, ThresholdCalibrator
from repro.detectors.knn import KNNClassifierDetector, KNNDistanceDetector, minkowski_distances
from repro.detectors.ocsvm import OneClassSVMDetector, kernel_matrix
from repro.detectors.madgan import (
    MADGANDetector,
    MADGANTrainingHistory,
    SequenceDiscriminator,
    SequenceGenerator,
)
from repro.detectors.ensemble import VotingEnsembleDetector

__all__ = [
    "AnomalyDetector",
    "ScaledDetectorMixin",
    "ThresholdCalibrator",
    "KNNClassifierDetector",
    "KNNDistanceDetector",
    "minkowski_distances",
    "OneClassSVMDetector",
    "kernel_matrix",
    "MADGANDetector",
    "MADGANTrainingHistory",
    "SequenceGenerator",
    "SequenceDiscriminator",
    "VotingEnsembleDetector",
]
