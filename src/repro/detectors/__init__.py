"""Static anomaly detectors (kNN, OneClassSVM, MAD-GAN, LSTM-VAE, HMM,
ensemble) and the per-tick streaming adapter used by :mod:`repro.serving`."""

from repro.detectors.base import AnomalyDetector, ScaledDetectorMixin, ThresholdCalibrator
from repro.detectors.knn import KNNClassifierDetector, KNNDistanceDetector, minkowski_distances
from repro.detectors.ocsvm import OneClassSVMDetector, kernel_matrix
from repro.detectors.madgan import (
    ColdBatchPlan,
    InversionState,
    MADGANDetector,
    MADGANTrainingHistory,
    SequenceDiscriminator,
    SequenceGenerator,
)
from repro.detectors.lstm_vae import LSTMVAEDetector, VAEStreamState
from repro.detectors.hmm import GaussianHMMDetector, HMMStreamState
from repro.detectors.ensemble import VotingEnsembleDetector
from repro.detectors.streaming import StreamingDetector, StreamVerdict

__all__ = [
    "AnomalyDetector",
    "ScaledDetectorMixin",
    "ThresholdCalibrator",
    "KNNClassifierDetector",
    "KNNDistanceDetector",
    "minkowski_distances",
    "OneClassSVMDetector",
    "kernel_matrix",
    "ColdBatchPlan",
    "InversionState",
    "MADGANDetector",
    "MADGANTrainingHistory",
    "SequenceGenerator",
    "SequenceDiscriminator",
    "LSTMVAEDetector",
    "VAEStreamState",
    "GaussianHMMDetector",
    "HMMStreamState",
    "VotingEnsembleDetector",
    "StreamingDetector",
    "StreamVerdict",
]
