"""LSTM-VAE anomaly detector scored by reconstruction negative log-likelihood.

The architecture follows the hrl_anomaly_detection LSTM-VAE exemplar: an
encoder LSTM summarizes a window into mean/log-variance heads, a latent is
reparameterized (``z = mu + exp(0.5 · logvar) · eps``), and a decoder LSTM
unrolls the latent back into a per-timestep Gaussian (mean + log-variance per
feature).  Training maximizes the ELBO through the fused engine — the
:func:`repro.nn.fused.fused_vae_loss_head` loss head seeds a hand-written
backward chain through the reparameterization trick (see
:meth:`_VAECore.fused_backward_train`) — with a graph twin pinned within 1e-8
(``tests/test_detectors_vae_hmm.py``).

Scoring is **deterministic**: the latent is the encoder mean (no sampling),
so repeated calls are bitwise identical and — unlike MAD-GAN, whose inversion
draws per-call latents — the LSTM-VAE joins the serving fabric's bitwise
parity gates (``check_parity.run_detector_family_smoke``): streaming
*verdicts* are bitwise equal to offline :meth:`LSTMVAEDetector.predict`
(streaming scores agree within 1e-12 — BLAS rounds per batch shape, and the
per-tick call batches fewer windows than the offline one), and sharded
layouts are bitwise equal to single-process serving at every shard count
(identical per-lane batches, identical arithmetic).
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

import numpy as np

from repro.detectors.base import AnomalyDetector, ThresholdCalibrator
from repro.nn import Adam, BatchIterator, Dense, FusedTrainer, LSTM, Module, Tensor
from repro.nn.fused import LOG_2PI, fused_vae_loss_head
from repro.nn.tensor import as_tensor, stack
from repro.utils.rng import as_random_state
from repro.utils.timeseries import StandardScaler
from repro.utils.validation import check_array, check_fitted


class _VAECore(Module):
    """Encoder LSTM → mu/logvar heads → decoder LSTM → Gaussian output heads.

    The decoder input is the latent repeated across every timestep (the
    sequence-to-sequence form of the hrl exemplar), so the latent gradient is
    the sum of the per-timestep decoder input gradients — exactly what
    :meth:`fused_backward_train` accumulates.
    """

    def __init__(self, sequence_length: int, n_features: int, latent_dim: int, hidden_size: int, seed=None):
        super().__init__()
        rng = as_random_state(seed)
        (
            encoder_seed,
            mu_seed,
            logvar_seed,
            decoder_seed,
            out_mean_seed,
            out_logvar_seed,
        ) = rng.spawn(6)
        self.sequence_length = int(sequence_length)
        self.n_features = int(n_features)
        self.latent_dim = int(latent_dim)
        self.hidden_size = int(hidden_size)
        self.encoder = LSTM(n_features, hidden_size, return_sequences=False, seed=encoder_seed)
        self.mu_head = Dense(hidden_size, latent_dim, seed=mu_seed)
        self.logvar_head = Dense(hidden_size, latent_dim, seed=logvar_seed)
        self.decoder = LSTM(latent_dim, hidden_size, return_sequences=True, seed=decoder_seed)
        self.out_mean = Dense(hidden_size, n_features, seed=out_mean_seed)
        self.out_logvar = Dense(hidden_size, n_features, seed=out_logvar_seed)
        #: Noise draw for the next training forward, ``(batch, latent_dim)``.
        #: Set by the trainer before each step; both the fused and the graph
        #: twin consume the identical array, which is what makes their
        #: fixed-seed loss curves match step-for-step.
        self._pending_eps: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ graph
    def forward(self, inputs, eps: Optional[np.ndarray] = None):
        """Autodiff twin of :meth:`fused_forward_train` (training reference)."""
        inputs = as_tensor(inputs)
        batch, timesteps, _ = inputs.shape
        if eps is None:
            eps = self._pending_eps
        if eps is None:
            raise ValueError("the VAE forward needs a reparameterization draw (eps)")
        encoded = self.encoder(inputs)
        mu = self.mu_head(encoded)
        logvar = self.logvar_head(encoded)
        sigma = (logvar * 0.5).exp()
        z = mu + sigma * np.asarray(eps, dtype=np.float64)
        # Repeating the latent across timesteps via stack makes its gradient
        # the sum over timesteps — mirrored by the fused path's axis-1 sum.
        z_sequence = stack([z] * timesteps, axis=1)
        decoded = self.decoder(z_sequence)
        flat = decoded.reshape(batch * timesteps, self.hidden_size)
        recon_mean = self.out_mean(flat).reshape(batch, timesteps, self.n_features)
        recon_logvar = self.out_logvar(flat).reshape(batch, timesteps, self.n_features)
        return recon_mean, recon_logvar, mu, logvar

    # ------------------------------------------------------------------ fused
    def fused_forward_train(self, inputs: np.ndarray):
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3:
            raise ValueError(
                f"VAE expects inputs of shape (batch, time, features), got {inputs.shape}"
            )
        batch, timesteps, _ = inputs.shape
        eps = self._pending_eps
        if eps is None:
            raise ValueError("the VAE forward needs a reparameterization draw (eps)")
        eps = np.asarray(eps, dtype=np.float64)
        if eps.shape != (batch, self.latent_dim):
            raise ValueError(
                f"eps must have shape ({batch}, {self.latent_dim}), got {eps.shape}"
            )
        encoded, encoder_cache = self.encoder.fused_forward_train(inputs)
        mu, mu_cache = self.mu_head.fused_forward_train(encoded)
        logvar, logvar_cache = self.logvar_head.fused_forward_train(encoded)
        sigma = np.exp(0.5 * logvar)
        z = mu + sigma * eps
        z_sequence = np.repeat(z[:, np.newaxis, :], timesteps, axis=1)
        decoded, decoder_cache = self.decoder.fused_forward_train(z_sequence)
        flat = decoded.reshape(batch * timesteps, self.hidden_size)
        recon_mean_flat, mean_cache = self.out_mean.fused_forward_train(flat)
        recon_logvar_flat, out_logvar_cache = self.out_logvar.fused_forward_train(flat)
        recon_mean = recon_mean_flat.reshape(batch, timesteps, self.n_features)
        recon_logvar = recon_logvar_flat.reshape(batch, timesteps, self.n_features)
        cache = (
            encoder_cache,
            mu_cache,
            logvar_cache,
            decoder_cache,
            mean_cache,
            out_logvar_cache,
            sigma,
            eps,
            (batch, timesteps),
        )
        return (recon_mean, recon_logvar, mu, logvar), cache

    def fused_backward_train(self, grad_output, cache) -> np.ndarray:
        (
            encoder_cache,
            mu_cache,
            logvar_cache,
            decoder_cache,
            mean_cache,
            out_logvar_cache,
            sigma,
            eps,
            (batch, timesteps),
        ) = cache
        d_recon_mean, d_recon_logvar, d_mu_direct, d_logvar_direct = grad_output
        flat_shape = (batch * timesteps, self.n_features)
        d_flat = self.out_mean.fused_backward_train(
            np.asarray(d_recon_mean, dtype=np.float64).reshape(flat_shape), mean_cache
        )
        d_flat = d_flat + self.out_logvar.fused_backward_train(
            np.asarray(d_recon_logvar, dtype=np.float64).reshape(flat_shape),
            out_logvar_cache,
        )
        d_decoded = d_flat.reshape(batch, timesteps, self.hidden_size)
        d_z_sequence = self.decoder.fused_backward_train(d_decoded, decoder_cache)
        d_z = d_z_sequence.sum(axis=1)
        # Reparameterization backward: z = mu + exp(0.5 · logvar) · eps, so
        # d_mu gets d_z directly and d_logvar gets d_z · eps · 0.5 · sigma;
        # the loss head's direct KL gradients ride on top.
        d_mu = d_z + np.asarray(d_mu_direct, dtype=np.float64)
        d_logvar = d_z * eps * (0.5 * sigma) + np.asarray(d_logvar_direct, dtype=np.float64)
        d_encoded = self.mu_head.fused_backward_train(d_mu, mu_cache)
        d_encoded = d_encoded + self.logvar_head.fused_backward_train(d_logvar, logvar_cache)
        return self.encoder.fused_backward_train(d_encoded, encoder_cache)


class VAEStreamState:
    """Per-stream encoder carry-over for :meth:`LSTMVAEDetector.scores_incremental`.

    The encoder restarts at every sliding-window boundary, so — exactly like
    :class:`repro.nn.recurrent.BiLSTMStreamState` — what *can* be carried is
    the position-independent work: the fused input projection
    ``sample @ weight_input`` of each window sample.  The state keeps a ring
    of the last ``sequence_length`` projections in window order; a steady
    tick pays one ``(features,) @ (features, 4·hidden)`` projection instead
    of re-projecting the whole window.  The remaining counters mirror
    :class:`repro.detectors.madgan.InversionState` so the streaming adapter's
    drain/watchdog plumbing works unchanged (the VAE path is deterministic,
    so ``fallbacks``/``pending_cold`` stay 0 forever).
    """

    __slots__ = (
        "projections",
        "cursor",
        "count",
        "ticks",
        "fallbacks",
        "pending_cold",
        "consecutive_fallbacks",
    )

    def __init__(self, sequence_length: int, projection_width: int):
        if sequence_length <= 0 or projection_width <= 0:
            raise ValueError("sequence_length and projection_width must be positive")
        self.projections = np.zeros((sequence_length, projection_width))
        self.cursor = 0
        self.count = 0
        self.ticks = 0
        self.fallbacks = 0
        self.pending_cold = 0
        self.consecutive_fallbacks = 0

    def reset(self) -> None:
        """Empty the projection ring; the next call re-seeds from a full window."""
        self.projections[:] = 0.0
        self.cursor = 0
        self.count = 0
        self.ticks = 0
        self.fallbacks = 0
        self.pending_cold = 0
        self.consecutive_fallbacks = 0


class LSTMVAEDetector(AnomalyDetector):
    """LSTM-VAE detector: per-window reconstruction NLL under the decoder Gaussian.

    Parameters
    ----------
    sequence_length, n_features:
        Window geometry (paper defaults: 12 samples, 4 signals).
    latent_dim, hidden_size:
        Bottleneck and LSTM widths.
    epochs, batch_size, learning_rate:
        ELBO training hyper-parameters (Adam, gradient clip 5.0 — the same
        budget the MAD-GAN twins train under).
    beta:
        KL weight in the ELBO (``loss = NLL + beta · KL``).
    quantile:
        Benign-score quantile calibrating the decision threshold.
    use_fast_path:
        When True (default) training runs through :class:`FusedTrainer` with
        the hand-written backward chain; False routes every step through the
        autodiff graph.  Both paths consume identical reparameterization
        draws, so their fixed-seed loss curves match step-for-step and their
        gradients agree within 1e-8.  Scoring is graph-free either way — it
        is deterministic (latent = encoder mean) and identical for both.
    seed:
        Seed for weights, reparameterization draws, batching, subsampling.

    The anomaly score of a window is the **max over timesteps** of the mean
    per-feature Gaussian NLL — like MAD-GAN's max-over-timesteps
    reconstruction error, a manipulation localized in the trailing samples is
    not diluted by the well-reconstructed rest of the window.
    """

    name = "LSTM-VAE"

    def __init__(
        self,
        sequence_length: int = 12,
        n_features: int = 4,
        latent_dim: int = 3,
        hidden_size: int = 16,
        epochs: int = 15,
        batch_size: int = 64,
        learning_rate: float = 0.005,
        beta: float = 1.0,
        quantile: float = 0.95,
        max_samples: int = 3000,
        use_fast_path: bool = True,
        seed=0,
    ):
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if beta < 0:
            raise ValueError("beta must be non-negative")
        self.sequence_length = int(sequence_length)
        self.n_features = int(n_features)
        self.latent_dim = int(latent_dim)
        self.hidden_size = int(hidden_size)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.beta = float(beta)
        self.max_samples = int(max_samples)
        self.use_fast_path = bool(use_fast_path)
        self._rng = as_random_state(seed)
        core_seed = self._rng.spawn(1)[0]
        self._core = _VAECore(
            self.sequence_length, self.n_features, self.latent_dim, self.hidden_size, seed=core_seed
        )
        self.calibrator = ThresholdCalibrator(quantile=quantile)
        self._scaler: Optional[StandardScaler] = None
        self.history_: Optional[List[float]] = None

    # ------------------------------------------------------------------ scaling
    def _scale(self, windows: np.ndarray, fit: bool = False) -> np.ndarray:
        windows = check_array(windows, "windows", ndim=3, min_samples=1)
        if windows.shape[1] != self.sequence_length or windows.shape[2] != self.n_features:
            raise ValueError(
                f"windows must have shape (n, {self.sequence_length}, {self.n_features}), "
                f"got {windows.shape}"
            )
        flat = windows.reshape(-1, self.n_features)
        if fit:
            self._scaler = StandardScaler().fit(flat)
        if self._scaler is None:
            raise RuntimeError("LSTMVAEDetector is not fitted")
        return self._scaler.transform(flat).reshape(windows.shape)

    # ----------------------------------------------------------------- training
    def fit(self, windows: np.ndarray, labels: Optional[np.ndarray] = None, obs=None) -> "LSTMVAEDetector":
        """Train the ELBO on benign windows; calibrate the NLL threshold.

        ``labels`` (optional) filters to benign rows (label 0) — the VAE is
        unsupervised and must never see malicious windows.  ``obs`` threads an
        :class:`~repro.obs.Observer` into the :class:`FusedTrainer` step loop
        (``train.steps_total`` / ``train.step_batch`` / ``train.step_seconds``
        / ``train.grad_buffers``); None records nothing.
        """
        if labels is not None:
            labels = check_array(labels, "labels", ndim=1)
            windows = np.asarray(windows)[labels == 0]
            if len(windows) == 0:
                raise ValueError("no benign samples (label 0) to fit on")
        scaled = self._scale(np.asarray(windows, dtype=np.float64), fit=True)
        if len(scaled) > self.max_samples:
            index = self._rng.choice(len(scaled), size=self.max_samples, replace=False)
            scaled = scaled[index]

        optimizer = Adam(self._core.parameters(), learning_rate=self.learning_rate)
        loss_head = fused_vae_loss_head(self.beta)
        trainer = FusedTrainer(
            self._core, optimizer, loss=loss_head, gradient_clip=5.0, obs=obs
        )
        iterator = BatchIterator(
            scaled,
            batch_size=self.batch_size,
            shuffle=True,
            drop_last=True,
            seed=self._rng.derive("batches"),
        )
        history: List[float] = []
        for _ in range(self.epochs):
            losses = []
            for batch, _ in iterator:
                # One reparameterization draw per step, consumed identically
                # by the fused and graph twins (fixed-seed curve parity).
                eps = self._rng.normal(0.0, 1.0, size=(len(batch), self.latent_dim))
                self._core._pending_eps = eps
                if self.use_fast_path:
                    losses.append(trainer.step(batch, batch))
                else:
                    losses.append(self._vae_step_graph(batch, eps, optimizer))
            history.append(float(np.mean(losses)))
        self._core._pending_eps = None
        self.history_ = history

        benign_scores = self._nll_scores(scaled)
        self.calibrator.fit(benign_scores)
        return self

    def _vae_step_graph(self, batch: np.ndarray, eps: np.ndarray, optimizer) -> float:
        """One ELBO step through the autodiff graph (reference twin).

        Mirrors :meth:`FusedTrainer.step` stage for stage — zero-grad,
        forward, loss, backward, clip, update — with the loss built from the
        same elementwise-mean reductions as the fused head.
        """
        optimizer.zero_grad()
        recon_mean, recon_logvar, mu, logvar = self._core(Tensor(batch), eps)
        target = np.asarray(batch, dtype=np.float64)
        difference = recon_mean - target
        inv_var = (recon_logvar * -1.0).exp()
        nll = (recon_logvar + difference * difference * inv_var + LOG_2PI).sum() * (
            0.5 / recon_mean.size
        )
        kl = ((mu * mu) + logvar.exp() - logvar - 1.0).sum() * (0.5 / mu.size)
        loss = nll + kl * self.beta
        loss.backward()
        optimizer.clip_gradients(5.0)
        optimizer.step()
        return float(loss.item())

    # ------------------------------------------------------------------ scoring
    def _encode_mean(self, scaled: np.ndarray) -> np.ndarray:
        """Deterministic encoder pass: the latent is the posterior mean."""
        encoded = self._core.encoder.fast_forward(scaled)
        return self._core.mu_head.fast_forward(encoded)

    def _decode_scores(self, scaled: np.ndarray, latent_mean: np.ndarray) -> np.ndarray:
        """Per-window NLL of ``scaled`` under the decoder Gaussian at ``latent_mean``."""
        count, timesteps, _ = scaled.shape
        z_sequence = np.repeat(latent_mean[:, np.newaxis, :], timesteps, axis=1)
        decoded = self._core.decoder.fast_forward(z_sequence)
        flat = decoded.reshape(count * timesteps, self.hidden_size)
        mean = self._core.out_mean.fast_forward(flat).reshape(scaled.shape)
        logvar = self._core.out_logvar.fast_forward(flat).reshape(scaled.shape)
        difference = scaled - mean
        nll = 0.5 * (logvar + difference * difference * np.exp(-logvar) + LOG_2PI)
        per_timestep = nll.mean(axis=2)
        # Max over timesteps: a manipulation typically touches only the
        # trailing samples of a window (same rationale as MAD-GAN).
        return per_timestep.max(axis=1)

    def _nll_scores(self, scaled: np.ndarray) -> np.ndarray:
        return self._decode_scores(scaled, self._encode_mean(scaled))

    def scores(self, windows: np.ndarray) -> np.ndarray:
        """Reconstruction-NLL anomaly scores, larger = more anomalous.

        Deterministic (latent = encoder mean, no sampling): repeated calls on
        the same windows are bitwise identical, and any two replicas scoring
        the same batch — e.g. sharded vs single-process serving of one lane —
        agree bitwise.  Calls with different batch composition agree within
        1e-12 (BLAS rounds per batch shape).
        """
        check_fitted(self, ("_scaler", "history_"))
        scaled = self._scale(np.asarray(windows, dtype=np.float64))
        return self._nll_scores(scaled)

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Binary decisions for raw windows: 1 = anomalous (see :meth:`scores`)."""
        return self.calibrator.predict(self.scores(windows))

    # ----------------------------------------------------------- incremental API
    def make_inversion_state(self) -> VAEStreamState:
        """Fresh per-stream encoder carry-over for :meth:`scores_incremental`."""
        return VAEStreamState(self.sequence_length, 4 * self.hidden_size)

    def scores_incremental(
        self, windows: np.ndarray, states: Sequence[VAEStreamState]
    ) -> np.ndarray:
        """Streaming NLL scores with per-stream encoder-projection carry-over.

        Parameters
        ----------
        windows:
            ``(n, sequence_length, n_features)`` raw windows, one per stream,
            each the stream's current sliding window (shifted by exactly one
            sample since that stream's previous call).
        states:
            One :class:`VAEStreamState` per window, aligned by position and
            updated in place.  A stream's first call (empty ring) projects
            the whole window once to seed the ring; later calls project only
            the newest sample.

        The encoder recurrence then runs on the ring rows with the identical
        per-step arithmetic as :meth:`repro.nn.recurrent.LSTM.fast_forward`,
        and the decoder/score tail is shared with :meth:`scores` — streaming
        *verdicts* are bitwise equal to the offline path and streaming scores
        agree within 1e-12 (``check_parity.run_detector_family_smoke`` and
        ``tests/test_detectors_vae_hmm.py`` gate both).  Scores are not
        bitwise because BLAS rounds per batch shape: the per-tick call
        multiplies one window (and, steady-state, one sample) where the
        offline call multiplies all windows at once.  Calls with identical
        batch composition — a repeated call, or sharded vs single-process
        serving of the same lane — ARE bitwise identical.
        """
        check_fitted(self, ("_scaler", "history_"))
        windows = np.asarray(windows, dtype=np.float64)
        if len(windows) != len(states):
            raise ValueError("windows and states must have the same length")
        scaled = self._scale(windows)
        count = len(scaled)
        sequence_length = self.sequence_length
        cell = self._core.encoder.cell
        weight_input = cell.weight_input.data
        projected = np.empty((count, sequence_length, 4 * self.hidden_size))
        for index, state in enumerate(states):
            if state.count < sequence_length:
                # Cold seed (first call or post-reset): project the whole
                # window — the same fused ``(T, F) @ (F, 4H)`` product
                # fast_forward uses — and store it in window order.
                ring = scaled[index] @ weight_input
                state.projections[:] = ring
                state.cursor = 0
                state.count = sequence_length
                projected[index] = ring
            else:
                state.projections[state.cursor] = scaled[index, -1, :] @ weight_input
                state.cursor = (state.cursor + 1) % sequence_length
                start = state.cursor
                if start:
                    projected[index, : sequence_length - start] = state.projections[start:]
                    projected[index, sequence_length - start :] = state.projections[:start]
                else:
                    projected[index] = state.projections
            state.ticks += 1

        hidden = np.zeros((count, self.hidden_size))
        cell_state = np.zeros((count, self.hidden_size))
        gates_buffer = np.empty((count, 4 * self.hidden_size))
        for step in range(sequence_length):
            hidden, cell_state = cell.fast_step(
                projected[:, step, :], hidden, cell_state, gates_buffer
            )
        latent_mean = self._core.mu_head.fast_forward(hidden)
        return self._decode_scores(scaled, latent_mean)

    def predict_incremental(
        self,
        windows: np.ndarray,
        states: Sequence[VAEStreamState],
        include_scores: bool = False,
    ):
        """Binary decisions via :meth:`scores_incremental` (one encoder pass).

        Returns the ``(n,)`` int flag array, or ``(flags, scores)`` when
        ``include_scores`` is True.
        """
        scores = self.scores_incremental(windows, states)
        flags = self.calibrator.predict(scores)
        if include_scores:
            return flags, scores
        return flags

    # -------------------------------------------------------------- addressing
    def state_hash(self) -> str:
        """Content address over weights, scaler, and calibrated threshold.

        Two fitted detectors share a hash exactly when they would score every
        window identically — the property the sharded fabric's pickle
        round-trip gates pin (``tests/test_serialization.py``).
        """
        check_fitted(self, ("_scaler", "history_"))
        digest = hashlib.sha256()
        digest.update(self._core.state_hash().encode())
        digest.update(np.ascontiguousarray(self._scaler.mean_).tobytes())
        digest.update(np.ascontiguousarray(self._scaler.std_).tobytes())
        digest.update(np.float64(self.calibrator.threshold_ or 0.0).tobytes())
        digest.update(np.float64(self.beta).tobytes())
        return digest.hexdigest()
