"""repro: reproduction of "Learning from the Good Ones" (DSN 2025).

A risk profiling framework that selectively trains static anomaly detectors on
the victim instances least vulnerable to an evasion attack, evaluated on a
synthetic blood glucose management system.

Subpackages
-----------
``repro.nn``
    Numpy autograd neural-network substrate (Dense, LSTM, BiLSTM, Adam, ...).
``repro.data``
    Physiological glucose simulator and synthetic OhioT1DM-like cohort.
``repro.glucose``
    Target BiLSTM glucose forecaster and glucose-state logic.
``repro.attacks``
    URET-style evasion attack framework (transformers, constraints, explorers).
``repro.detectors``
    kNN, OneClassSVM, and MAD-GAN anomaly detectors.
``repro.risk``
    The paper's contribution: severity-weighted risk quantification, risk
    profiles, hierarchical clustering, and selective-training strategies.
``repro.eval``
    Metrics, experiment harness, and report generation for every paper
    table/figure.
``repro.serving``
    Streaming online-inference subsystem: per-patient sessions with
    incremental recurrent state, a scheduler batching every session sharing a
    model into one step per tick, a mid-stream URET attacker, and live
    attack/detection replay.
``repro.obs``
    Deterministic telemetry spine: metrics registry with order-invariant
    shard merges, per-tick trace spans, structured events, JSONL export,
    and the best-of-N wall-clock Timer behind every BENCH_*.json number.
"""

import logging

# Library-standard logging hygiene: the package logs structured warnings on
# degradation paths (worker death, checkpoint rejection, detector failures)
# but stays silent unless the application configures a handler.
logging.getLogger(__name__).addHandler(logging.NullHandler())

__version__ = "1.0.0"
