"""Graceful degradation: session health states, ingress validation, checkpoint gates.

The scheduler (PR 3–5) assumed every session delivers clean finite samples
and every model step succeeds.  One NaN reading poisons a BiLSTM hidden
state *permanently* — every later prediction of that stream is NaN — and an
exception thrown inside a stacked lane step used to abort the whole tick for
every co-scheduled session.  This module is the serving fabric's immune
system:

* :class:`IngressConfig` validates each delivered sample **before** it can
  touch any recurrent state, with three policies for bad samples: reject
  (drop the tick), clamp (clip a finite out-of-range CGM back into the
  physiological band), or hold-last (re-deliver the previous good sample).
* :class:`SessionHealth` is a per-session state machine
  (healthy → degraded → quarantined → recovered) with bounded
  retry/backoff re-admission: repeated errors quarantine the session (its
  lane slot is reset and recycled-in-place; other lanes tick on), a backoff
  countdown re-admits it on probation, a probation failure re-quarantines
  with doubled backoff, and after ``max_readmissions`` strikes the session
  fails terminally.
* :func:`validate_checkpoint` gates model loading: a lane refuses a
  predictor whose ``state_hash`` mismatches the expected one or whose
  weights/scaler statistics contain non-finite values.

The scheduler threads all of this through :meth:`StreamScheduler.tick`;
with no health/ingress configured the scheduler byte-for-byte reproduces the
pre-robustness behavior (``tests/test_serving_faults.py`` pins parity).

:class:`SessionHealth` — including its transition timeline and a live
quarantine-backoff countdown — is part of the state captured by scheduler
snapshots (``repro.serving.recovery``): a session restored mid-quarantine
resumes the same countdown and re-admits on the same tick it would have
without the crash (``tests/test_recovery.py`` pins this).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

import numpy as np

from repro.data.cohort import CGM_COLUMN
from repro.glucose.states import MAX_PLAUSIBLE_GLUCOSE

logger = logging.getLogger(__name__)


class HealthState(str, Enum):
    """Lifecycle of one monitored session."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"  # errors observed, still served
    QUARANTINED = "quarantined"  # not served; backoff counting down
    RECOVERED = "recovered"  # re-admitted on probation
    FAILED = "failed"  # terminal: re-admission budget exhausted


class IngressPolicy(str, Enum):
    """What to do with a non-finite or out-of-range delivered sample."""

    REJECT = "reject"  # drop the tick entirely (data loss, state safe)
    CLAMP = "clamp"  # clip a finite out-of-range CGM into the valid band
    HOLD_LAST = "hold_last"  # re-deliver the last good sample instead


@dataclass(frozen=True)
class IngressConfig:
    """Sample validation applied before any model or detector sees a tick.

    A sample is *invalid* when any feature is non-finite or its CGM value
    falls outside ``glucose_range``.  ``CLAMP`` can only repair a finite
    out-of-range CGM; a non-finite sample falls back to hold-last, and when
    no previous good sample exists the tick is rejected regardless of
    policy (there is nothing safe to deliver).
    """

    policy: IngressPolicy = IngressPolicy.REJECT
    glucose_range: Tuple[float, float] = (20.0, MAX_PLAUSIBLE_GLUCOSE)

    def __post_init__(self):
        low, high = self.glucose_range
        if not low < high:
            raise ValueError("glucose_range must satisfy low < high")

    def validate(
        self, sample: np.ndarray, last_good: Optional[np.ndarray]
    ) -> Tuple[Optional[np.ndarray], Optional[str]]:
        """Return ``(deliverable sample or None, ingress tag or None)``.

        ``(sample, None)`` — by identity — for a valid sample; a tag of
        ``"clamped"`` / ``"held"`` with a repaired sample, or ``(None,
        "rejected")`` when the tick must be dropped.
        """
        finite = bool(np.all(np.isfinite(sample)))
        low, high = self.glucose_range
        cgm = sample[CGM_COLUMN]
        in_range = bool(low <= cgm <= high) if finite else False
        if finite and in_range:
            return sample, None
        if self.policy == IngressPolicy.CLAMP and finite:
            repaired = np.array(sample, dtype=np.float64, copy=True)
            repaired[CGM_COLUMN] = float(np.clip(cgm, low, high))
            return repaired, "clamped"
        if self.policy in (IngressPolicy.CLAMP, IngressPolicy.HOLD_LAST):
            if last_good is not None:
                return np.array(last_good, dtype=np.float64, copy=True), "held"
        return None, "rejected"


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds for the :class:`SessionHealth` state machine.

    Parameters
    ----------
    degrade_after:
        Consecutive errors before HEALTHY demotes to DEGRADED.
    quarantine_after:
        Consecutive errors before the session is QUARANTINED (its lane
        state reset, deliveries dropped).
    recover_after:
        Consecutive clean ticks that promote DEGRADED / RECOVERED back to
        HEALTHY.
    backoff_ticks:
        Attempted deliveries a quarantined session sits out before its
        probationary re-admission; doubles (``backoff_factor``) per
        successive quarantine.
    backoff_factor:
        Multiplier applied to the backoff per quarantine (exponential
        backoff re-admission).
    max_readmissions:
        Re-admissions granted before the session FAILS terminally.
    """

    degrade_after: int = 1
    quarantine_after: int = 3
    recover_after: int = 4
    backoff_ticks: int = 8
    backoff_factor: float = 2.0
    max_readmissions: int = 3

    def __post_init__(self):
        if self.degrade_after < 1 or self.quarantine_after < 1:
            raise ValueError("degrade_after and quarantine_after must be >= 1")
        if self.degrade_after > self.quarantine_after:
            raise ValueError("degrade_after must not exceed quarantine_after")
        if self.recover_after < 1:
            raise ValueError("recover_after must be >= 1")
        if self.backoff_ticks < 1:
            raise ValueError("backoff_ticks must be >= 1")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.max_readmissions < 0:
            raise ValueError("max_readmissions must be >= 0")


@dataclass(frozen=True)
class HealthEvent:
    """One state transition in a session's health timeline.

    ``tick`` is the *session-local* tick of the transition; ``delivered_at``
    is the device-clock slot (the replayer's global tick) of the delivery
    that triggered it, so quarantine events line up with the trace spans of
    the tick that caused them (None when the scheduler is driven without a
    device clock, e.g. direct ``tick()`` calls in tests).  ``backoff`` is
    the re-admission backoff depth in ticks at a QUARANTINED transition
    (0 for every other state).
    """

    tick: int
    state: HealthState
    reason: str
    delivered_at: Optional[int] = None
    backoff: int = 0


class SessionHealth:
    """Per-session error bookkeeping and state machine.

    Owned by :class:`~repro.serving.session.PatientSession` when the
    scheduler runs with a :class:`HealthConfig`; driven by the scheduler:
    ``record_error`` on ingress rejections / lane failures / non-finite
    predictions, ``record_clean`` on successful ticks, ``admit`` per
    attempted delivery while quarantined.

    ``session_id`` and ``obs`` are optional observability wiring: with an
    :class:`~repro.obs.Observer` every transition increments the
    ``serving.health_transitions_total{state=...}`` counter and records a
    ``health_transition`` event carrying session/tick identity and backoff
    depth.  The ``delivered_at`` argument every event method accepts is the
    device-clock slot of the delivery driving the transition (threaded by
    the scheduler from ``tick(..., now=)``).
    """

    def __init__(self, config: HealthConfig, session_id: Optional[str] = None, obs=None):
        self.config = config
        self.session_id = session_id
        self.obs = obs
        self.state = HealthState.HEALTHY
        self.consecutive_errors = 0
        self.consecutive_clean = 0
        self.total_errors = 0
        self.quarantines = 0
        self.readmissions = 0
        self.backoff_remaining = 0
        self.timeline: List[HealthEvent] = [HealthEvent(0, HealthState.HEALTHY, "opened")]

    # ------------------------------------------------------------------ queries
    @property
    def blocked(self) -> bool:
        """True while deliveries to this session must be dropped."""
        return self.state in (HealthState.QUARANTINED, HealthState.FAILED)

    @property
    def serving(self) -> bool:
        return not self.blocked

    def _transition(
        self,
        tick: int,
        state: HealthState,
        reason: str,
        delivered_at: Optional[int] = None,
        backoff: int = 0,
    ) -> None:
        self.state = state
        self.timeline.append(HealthEvent(tick, state, reason, delivered_at, backoff))
        if state in (HealthState.QUARANTINED, HealthState.FAILED):
            logger.warning(
                "session %s -> %s at tick %s (delivered_at=%s): %s",
                self.session_id,
                state.value,
                tick,
                delivered_at,
                reason,
            )
        if self.obs is not None:
            self.obs.registry.inc("serving.health_transitions_total", state=state.value)
            self.obs.event(
                "health_transition",
                session=self.session_id,
                tick=tick,
                delivered_at=delivered_at,
                state=state.value,
                reason=reason,
                backoff=backoff,
            )

    # ------------------------------------------------------------------- events
    def record_error(
        self, tick: int, reason: str, delivered_at: Optional[int] = None
    ) -> HealthState:
        """Register one error event; returns the (possibly new) state.

        A transition *into* QUARANTINED tells the scheduler to reset the
        session's lane slot, ring, and detector adapters — the quarantined
        state may be corrupted and re-admission re-warms from scratch.
        """
        self.consecutive_clean = 0
        self.consecutive_errors += 1
        self.total_errors += 1
        if self.state in (HealthState.QUARANTINED, HealthState.FAILED):
            return self.state
        probation_strike = self.state == HealthState.RECOVERED
        if probation_strike or self.consecutive_errors >= self.config.quarantine_after:
            self._quarantine(
                tick, reason, probation_strike=probation_strike, delivered_at=delivered_at
            )
        elif (
            self.state == HealthState.HEALTHY
            and self.consecutive_errors >= self.config.degrade_after
        ):
            self._transition(tick, HealthState.DEGRADED, reason, delivered_at)
        return self.state

    def _quarantine(
        self,
        tick: int,
        reason: str,
        probation_strike: bool = False,
        delivered_at: Optional[int] = None,
    ) -> None:
        if self.quarantines > self.config.max_readmissions:
            self._transition(
                tick,
                HealthState.FAILED,
                f"re-admission budget exhausted ({reason})",
                delivered_at,
            )
            return
        backoff = self.config.backoff_ticks * (self.config.backoff_factor ** self.quarantines)
        self.quarantines += 1
        if self.quarantines > self.config.max_readmissions:
            # This was the last allowed quarantine — no re-admission follows.
            self._transition(
                tick, HealthState.FAILED, f"final quarantine ({reason})", delivered_at
            )
            return
        self.backoff_remaining = int(np.ceil(backoff))
        self.consecutive_errors = 0
        prefix = "probation failed: " if probation_strike else ""
        self._transition(
            tick,
            HealthState.QUARANTINED,
            prefix + reason,
            delivered_at,
            backoff=self.backoff_remaining,
        )

    def quarantine_now(
        self, tick: int, reason: str, delivered_at: Optional[int] = None
    ) -> HealthState:
        """Escalate straight to quarantine (severe failure: lane exception).

        Used when the error may have corrupted per-stream state — waiting
        out the consecutive-error threshold would keep serving from a
        possibly torn recurrent state.
        """
        self.consecutive_clean = 0
        self.total_errors += 1
        if self.state in (HealthState.QUARANTINED, HealthState.FAILED):
            return self.state
        self._quarantine(tick, reason, delivered_at=delivered_at)
        return self.state

    def record_clean(self, tick: int, delivered_at: Optional[int] = None) -> HealthState:
        """Register one successful tick; may promote back to HEALTHY."""
        self.consecutive_errors = 0
        self.consecutive_clean += 1
        if (
            self.state in (HealthState.DEGRADED, HealthState.RECOVERED)
            and self.consecutive_clean >= self.config.recover_after
        ):
            self._transition(tick, HealthState.HEALTHY, "recovered", delivered_at)
        return self.state

    def admit(self, tick: int, delivered_at: Optional[int] = None) -> bool:
        """One delivery attempted while blocked; True when re-admitted now.

        Each attempted delivery counts the backoff down; when it reaches
        zero the session re-enters on probation (RECOVERED) and the
        triggering delivery is served.
        """
        if self.state == HealthState.FAILED:
            return False
        if self.state != HealthState.QUARANTINED:
            return True
        self.backoff_remaining -= 1
        if self.backoff_remaining > 0:
            return False
        self.readmissions += 1
        self.consecutive_clean = 0
        self._transition(
            tick, HealthState.RECOVERED, f"re-admission #{self.readmissions}", delivered_at
        )
        return True


class CheckpointError(RuntimeError):
    """A model failed validation before a lane would accept it."""


def _scan_non_finite(name: str, value) -> Optional[str]:
    if isinstance(value, np.ndarray):
        if value.dtype.kind == "f" and not np.all(np.isfinite(value)):
            return name
    return None


def validate_checkpoint(predictor, expected_hash: Optional[str] = None) -> str:
    """Validate a predictor before a lane accepts it; returns its state hash.

    Raises :class:`CheckpointError` when ``expected_hash`` mismatches the
    predictor's :meth:`~repro.glucose.predictor.GlucosePredictor.state_hash`
    or when any model weight / scaler statistic contains a non-finite value
    (a torn or corrupted checkpoint must never be served).
    """
    actual = predictor.state_hash()
    if expected_hash is not None and actual != expected_hash:
        logger.warning(
            "checkpoint rejected: state_hash mismatch (expected %s, got %s)",
            expected_hash,
            actual,
        )
        raise CheckpointError(
            f"state_hash mismatch: expected {expected_hash!r}, got {actual!r} — "
            "refusing to serve a model that is not the one the caller pinned"
        )
    bad: List[str] = []
    for name, tensor in predictor.model.state_dict().items():
        if _scan_non_finite(name, np.asarray(tensor)) is not None:
            bad.append(name)
    scaler = getattr(predictor, "scaler", None)
    if scaler is not None:
        for attr, value in vars(scaler).items():
            target = getattr(value, "__dict__", None)
            if isinstance(value, np.ndarray):
                if _scan_non_finite(attr, value) is not None:
                    bad.append(f"scaler.{attr}")
            elif target is not None:
                # Nested scaler objects (e.g. WindowScaler wrapping a
                # StandardScaler) — scan one level deep.
                for inner_attr, inner in target.items():
                    if isinstance(inner, np.ndarray) and _scan_non_finite(inner_attr, inner):
                        bad.append(f"scaler.{attr}.{inner_attr}")
    if bad:
        logger.warning(
            "checkpoint rejected: non-finite values in %s (state_hash=%s)",
            ", ".join(sorted(bad)),
            actual,
        )
        raise CheckpointError(
            f"checkpoint contains non-finite values in: {', '.join(sorted(bad))} — "
            "refusing to serve a corrupted model"
        )
    return actual
