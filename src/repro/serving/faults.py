"""Seeded benign sensor-fault injection for replayed CGM streams.

The paper's threat model lives in a world where CGM hardware *glitches*:
sensors pick up bias as they age, get stuck repeating the last reading,
spike on compression lows, drift out of calibration, drop radio packets in
bursts, and occasionally emit garbage (NaN, negative, or absurdly large
values).  None of that is an attack — and a detector that confuses benign
device faults with tampering is unusable, because its false-alarm cost
explodes exactly when the hardware is at its flakiest.

This module produces those faults *declaratively and reproducibly*:

* :class:`SensorFaultConfig` describes per-kind hazard rates and
  magnitude/duration ranges.  The zero config (all rates 0) is inert by
  construction — :meth:`DeviceFaultPlan.apply` returns the caller's sample
  object untouched, so a replay with a zero config is bitwise-identical to
  one with no injector at all (``tests/test_serving_faults.py`` pins this).
* :class:`FaultInjector` materializes one :class:`DeviceFaultPlan` per
  device from ``seed`` via :meth:`repro.utils.rng.RandomState.derive`, so a
  device's faults depend only on ``(seed, label, trace length)`` — never on
  how many other devices replay alongside it, nor on the global-tick order
  device clocks or session churn impose.  Fault injection therefore
  *commutes* with delivery-order perturbations: the sample delivered for
  position ``p`` of device ``d`` is the same with or without clocks/churn.

Faults are applied in **session-position** coordinates (the index into the
device's trace), upstream of the online attacker: the attacker sits on the
CGM→pump link and tampers with whatever the (possibly faulty) sensor
transmitted.  The replayer treats the faulted sample as the *benign* one, so
benign faults are never counted as attacks in the replay report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

import numpy as np

from repro.data.cohort import CGM_COLUMN
from repro.glucose.states import MAX_PLAUSIBLE_GLUCOSE
from repro.utils.rng import as_random_state

#: Benign faulted readings stay physiological: real sensors clamp to a floor
#: (Dexcom reports "LOW" below 40 mg/dL) and the dataset's observed ceiling.
SENSOR_FLOOR = 40.0


class FaultKind(str, Enum):
    """The taxonomy of injectable benign device faults."""

    BIAS = "bias"  # additive bias ramping up then holding over the event
    STUCK = "stuck"  # stuck-at: repeat the last delivered CGM value
    SPIKE = "spike"  # one-tick transient (compression low / pressure spike)
    DRIFT = "drift"  # slow calibration drift, linear in ticks
    DROPOUT = "dropout"  # radio loss burst: delivery delayed, never skipped
    MALFORMED = "malformed"  # NaN / negative / out-of-range garbage sample


@dataclass(frozen=True)
class SensorFaultConfig:
    """Declarative per-device fault mix for :class:`FaultInjector`.

    Each ``*_rate`` is a per-tick hazard of a new event of that kind
    starting (events of one kind never overlap themselves; different kinds
    may overlap, composing additively where that makes sense).  Ranges are
    inclusive ``(low, high)`` bounds the per-event draw is taken from.

    ``SensorFaultConfig()`` — all rates zero — injects nothing and replays
    bitwise-identical to running without an injector.
    """

    bias_rate: float = 0.0
    bias_magnitude: Tuple[float, float] = (10.0, 40.0)  # mg/dL at full ramp
    bias_duration: Tuple[int, int] = (8, 24)

    stuck_rate: float = 0.0
    stuck_duration: Tuple[int, int] = (3, 10)

    spike_rate: float = 0.0
    spike_magnitude: Tuple[float, float] = (30.0, 120.0)  # signed draw

    drift_rate: float = 0.0
    drift_slope: Tuple[float, float] = (0.2, 1.5)  # mg/dL per tick
    drift_duration: Tuple[int, int] = (16, 48)

    dropout_rate: float = 0.0
    dropout_duration: Tuple[int, int] = (1, 4)  # global ticks of delay

    malformed_rate: float = 0.0

    seed: int = 0

    def __post_init__(self):
        for name in (
            "bias_rate",
            "stuck_rate",
            "spike_rate",
            "drift_rate",
            "dropout_rate",
            "malformed_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        for name in (
            "bias_magnitude",
            "bias_duration",
            "stuck_duration",
            "spike_magnitude",
            "drift_slope",
            "drift_duration",
            "dropout_duration",
        ):
            low, high = getattr(self, name)
            if low > high:
                raise ValueError(f"{name} range must satisfy low <= high, got {low} > {high}")
        for name in ("bias_duration", "stuck_duration", "drift_duration", "dropout_duration"):
            low, _ = getattr(self, name)
            if low < 1:
                raise ValueError(f"{name} must start at 1 tick or more")

    @property
    def enabled(self) -> bool:
        """False for the inert zero config."""
        return any(
            getattr(self, name) > 0.0
            for name in (
                "bias_rate",
                "stuck_rate",
                "spike_rate",
                "drift_rate",
                "dropout_rate",
                "malformed_rate",
            )
        )


@dataclass(frozen=True)
class FaultEvent:
    """One materialized fault: kind + session-position interval + magnitude."""

    kind: FaultKind
    start: int
    duration: int
    magnitude: float = 0.0

    @property
    def end(self) -> int:
        """First position after the event."""
        return self.start + self.duration

    def covers(self, position: int) -> bool:
        return self.start <= position < self.end


#: The malformed-sample corruption menu: NaN, a negative reading, and values
#: far outside the physiological range — everything ingress validation must
#: catch.  Indexed by a per-event draw.
_MALFORMED_VALUES = (float("nan"), -55.0, 1200.0, 1e6)


@dataclass
class DeviceFaultPlan:
    """One device's fully materialized fault schedule over its trace.

    Built once per (device, trace length) by :meth:`FaultInjector.plan_for`;
    the replayer then calls :meth:`apply` per delivered position and
    :meth:`delay_at` when scheduling delivery times.  All randomness is
    spent at build time — applying the plan is deterministic and depends
    only on the position, which is what makes fault injection commute with
    device clocks and session churn.
    """

    label: str
    n_ticks: int
    events: List[FaultEvent] = field(default_factory=list)
    #: (n_ticks,) additive CGM offset (bias ramps + drift + spikes).
    offsets: np.ndarray = None
    #: (n_ticks,) bool — stuck-at positions (hold the last delivered CGM).
    stuck: np.ndarray = None
    #: (n_ticks,) bool / float — malformed positions and their raw values.
    malformed_mask: np.ndarray = None
    malformed_values: np.ndarray = None
    #: (n_ticks,) int — extra global ticks of delivery delay (dropout bursts).
    delays: np.ndarray = None

    def __post_init__(self):
        n = self.n_ticks
        if self.offsets is None:
            self.offsets = np.zeros(n)
        if self.stuck is None:
            self.stuck = np.zeros(n, dtype=bool)
        if self.malformed_mask is None:
            self.malformed_mask = np.zeros(n, dtype=bool)
        if self.malformed_values is None:
            self.malformed_values = np.zeros(n)
        if self.delays is None:
            self.delays = np.zeros(n, dtype=int)

    @property
    def n_events(self) -> int:
        return len(self.events)

    def kinds_at(self, position: int) -> Tuple[FaultKind, ...]:
        """Every fault kind active at one session position."""
        return tuple(event.kind for event in self.events if event.covers(position))

    def delay_at(self, position: int) -> int:
        """Extra global ticks this position's delivery is delayed by."""
        if position >= self.n_ticks:
            return 0
        return int(self.delays[position])

    def total_delay(self) -> int:
        """Sum of all delivery delays — extends the replay safety cap."""
        return int(self.delays.sum())

    def apply(
        self,
        position: int,
        sample: np.ndarray,
        held_cgm: Optional[float],
    ) -> Tuple[np.ndarray, Tuple[FaultKind, ...], Optional[float]]:
        """Corrupt one sample; return ``(sample, kinds, new_held_cgm)``.

        ``held_cgm`` is the CGM value the device last *transmitted* (post
        fault) — the stuck-at hold value.  When no fault covers ``position``
        the caller's array is returned **unmodified and by identity**, which
        is what makes the zero config bitwise-inert.
        """
        true_cgm = float(sample[CGM_COLUMN])
        kinds = self.kinds_at(position)
        if not kinds:
            return sample, kinds, true_cgm
        corrupted = np.array(sample, dtype=np.float64, copy=True)
        cgm = true_cgm
        if self.stuck[position] and held_cgm is not None and np.isfinite(held_cgm):
            cgm = float(held_cgm)
        cgm = cgm + float(self.offsets[position])
        # Benign faults stay physiological: a biased/stuck/drifting sensor
        # still reports a plausible glucose value.
        cgm = float(np.clip(cgm, SENSOR_FLOOR, MAX_PLAUSIBLE_GLUCOSE))
        if self.malformed_mask[position]:
            # Malformed garbage overrides everything — this is the one fault
            # kind ingress validation exists to catch.
            cgm = float(self.malformed_values[position])
        corrupted[CGM_COLUMN] = cgm
        held = cgm if np.isfinite(cgm) else held_cgm
        return corrupted, kinds, held


class FaultInjector:
    """Materialize per-device fault plans from a :class:`SensorFaultConfig`.

    The injector is stateless across devices: each plan is drawn from
    ``config.seed`` derived with the device label, so adding or removing
    devices from a replay never changes another device's faults, and
    replaying the same cohort twice injects identical faults.
    """

    def __init__(self, config: Optional[SensorFaultConfig] = None):
        self.config = config if config is not None else SensorFaultConfig()

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    # ------------------------------------------------------------------ planning
    def plan_for(self, label: str, n_ticks: int) -> DeviceFaultPlan:
        """Build the deterministic fault schedule for one device's trace."""
        plan = DeviceFaultPlan(label=str(label), n_ticks=int(n_ticks))
        config = self.config
        if not config.enabled or n_ticks <= 0:
            return plan
        root = as_random_state(config.seed).derive(f"faults:{label}")

        def draw_events(kind: FaultKind, rate: float, duration_range, fixed_duration=None):
            """Non-overlapping (within a kind) events via per-tick hazards."""
            if rate <= 0.0:
                return []
            rng = root.derive(kind.value)
            events = []
            position = 0
            while position < n_ticks:
                if float(rng.random()) < rate:
                    if fixed_duration is not None:
                        duration = fixed_duration
                    else:
                        low, high = duration_range
                        duration = int(rng.integers(low, high + 1))
                    duration = min(duration, n_ticks - position)
                    events.append((position, duration, rng))
                    position += duration
                else:
                    position += 1
            return events

        for start, duration, rng in draw_events(
            FaultKind.BIAS, config.bias_rate, config.bias_duration
        ):
            magnitude = float(rng.uniform(*config.bias_magnitude))
            if float(rng.random()) < 0.5:
                magnitude = -magnitude
            plan.events.append(FaultEvent(FaultKind.BIAS, start, duration, magnitude))
            # Ramp from 0 to full magnitude over the first half, then hold.
            ramp = np.minimum(np.arange(1, duration + 1) / max(duration // 2, 1), 1.0)
            plan.offsets[start : start + duration] += magnitude * ramp

        for start, duration, _ in draw_events(
            FaultKind.STUCK, config.stuck_rate, config.stuck_duration
        ):
            plan.events.append(FaultEvent(FaultKind.STUCK, start, duration))
            plan.stuck[start : start + duration] = True

        for start, duration, rng in draw_events(
            FaultKind.SPIKE, config.spike_rate, None, fixed_duration=1
        ):
            magnitude = float(rng.uniform(*config.spike_magnitude))
            if float(rng.random()) < 0.5:
                magnitude = -magnitude
            plan.events.append(FaultEvent(FaultKind.SPIKE, start, duration, magnitude))
            plan.offsets[start] += magnitude

        for start, duration, rng in draw_events(
            FaultKind.DRIFT, config.drift_rate, config.drift_duration
        ):
            slope = float(rng.uniform(*config.drift_slope))
            if float(rng.random()) < 0.5:
                slope = -slope
            plan.events.append(FaultEvent(FaultKind.DRIFT, start, duration, slope))
            plan.offsets[start : start + duration] += slope * np.arange(1, duration + 1)

        for start, duration, _ in draw_events(
            FaultKind.DROPOUT, config.dropout_rate, config.dropout_duration
        ):
            plan.events.append(FaultEvent(FaultKind.DROPOUT, start, duration, float(duration)))
            # The whole burst lands on its first position: delivery of that
            # sample is delayed `duration` global ticks (samples are a
            # sequence — delayed, never skipped, like clock dropouts).
            plan.delays[start] += duration

        for start, duration, rng in draw_events(
            FaultKind.MALFORMED, config.malformed_rate, None, fixed_duration=1
        ):
            choice = int(rng.integers(0, len(_MALFORMED_VALUES)))
            value = _MALFORMED_VALUES[choice]
            plan.events.append(FaultEvent(FaultKind.MALFORMED, start, duration, value))
            plan.malformed_mask[start] = True
            plan.malformed_values[start] = value

        plan.events.sort(key=lambda event: (event.start, event.kind.value))
        return plan
