"""Multiprocess sharded execution fabric for the serving scheduler.

Everything below :class:`~repro.serving.scheduler.StreamScheduler` runs in
one Python process on one core; this module is the scale-out layer that
partitions a session fleet across a pool of worker processes while keeping
the single-process semantics **bitwise** (``scripts/check_parity.py`` gates
``run_shard_smoke`` on it).

Architecture
------------
Each worker process owns a full, ordinary :class:`StreamScheduler` — its
*shard* — plus a content-addressed registry of rehydrated checkpoints and
shared detector objects.  The parent-side :class:`ShardedScheduler` facade
exposes the same ``open_session`` / ``tick`` / ``close_session`` API and:

* **Partitions sessions** with a deterministic hash of
  ``(lane state_hash, session id)`` — independent of open order, so a replay
  shards the same way every run.  Weights are content-addressed: each worker
  materializes at most one model copy per lane it serves.  Checkpoints cross
  the boundary once per ``(worker, lane)`` as pickled payloads and are
  re-verified on arrival with the existing
  :func:`~repro.serving.health.validate_checkpoint` / ``state_hash``
  machinery, so a torn pickle can never serve.
* **Deduplicates shared detectors**: a detector object shared by many
  sessions (the scheduler's batched-query contract) ships once per worker
  and every session adapter on that worker reattaches to the single local
  copy, preserving the one-batched-``predict``-per-detector-per-tick shape
  inside each shard.
* **Merges ticks deterministically**: one ``tick`` fans the delivered
  samples out to the owning shards, the workers step concurrently, and the
  merged ``{session_id: SessionTick}`` result is ordered by session id —
  independent of shard count and assignment.
* **Isolates worker death**: a shard whose process dies (or whose pipe
  breaks) degrades only its own sessions — they receive ``dropped`` ticks
  naming the dead shard — while every other shard keeps serving outputs
  bitwise-identical to running solo.

Crash recovery (opt-in supervision)
-----------------------------------
Passing ``supervision=SupervisorConfig(...)`` upgrades worker death from
terminal to recoverable.  Workers piggyback a full deterministic
:class:`~repro.serving.recovery.SchedulerSnapshot` of their shard on every
``snapshot_interval``-th tick reply, and the parent journals every
state-mutating command (model/detector/open/close/tick) sent since the last
snapshot.  When a worker dies — EOF on its pipe, a broken send, or a
``request_timeout`` expiry (the stuck worker is force-killed first) — the
supervisor respawns the process with bounded exponential backoff, restores
the last snapshot, replays the journal verbatim (re-deriving detector RNG
streams to their exact pre-crash positions), and re-sends the one in-flight
command the dead worker never acknowledged.  The result is the repo's
strongest robustness contract: **a run with workers killed mid-stream is
bitwise identical to a run that never crashed** — survivors untouched,
victims resumed exactly (``check_parity.run_recovery_smoke`` and the
``chaos_replay.py`` kill-mix scenarios gate it).  A ``max_restarts``
circuit breaker bounds the respawn loop; a shard that exhausts it falls
back to the terminal dropped-ticks behavior above.  With
``snapshot_interval=None`` the supervisor still respawns but rehydrates by
re-opening every session fresh (PR 6's quarantine/re-warm semantics: warm
stream state is lost, verdicts restart from the warmup phase).  Without
``supervision`` the fabric behaves exactly as before.  See
``docs/recovery.md``.

RNG boundary rule
-----------------
``RandomState(existing)`` shares one stream in-process, but separately
pickled copies silently stop sharing and re-draw identical values
(:meth:`repro.utils.rng.RandomState.fork` documents the hazard; the
regression tests pin it).  Crossing into a worker is therefore an explicit
derivation point: when a detector carrying a ``RandomState`` is registered
on a worker, its stream is re-derived with a stable per-shard tag
(``derive("shard:<index>")``) instead of inheriting a frozen copy of the
parent's stream.  Consequences: stochastic detectors (MAD-GAN cold latent
draws) are *reproducible* for a fixed seed and shard layout but not
bitwise-invariant across layouts; the bitwise parity gates use
deterministic detectors.  Model weights are never re-derived — predictions
spend no randomness.

Session handles
---------------
``open_session`` returns a :class:`ShardSessionHandle`, a parent-side
mirror that duck-types the :class:`~repro.serving.session.PatientSession`
surface the replayer and online attacker consume (``ticks``,
``context_window``, ``predictor``, ``health``).  The mirror ring is rebuilt
from the returned :class:`SessionTick` stream (served ticks push exactly the
sample the worker pushed; a quarantine transition resets it), so a
man-in-the-middle attacker sees the same live context window it would see
single-process.
"""

from __future__ import annotations

import logging
import multiprocessing
import pickle
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.glucose.predictor import GlucosePredictor
from repro.obs import MetricsRegistry, Observer
from repro.serving.health import HealthConfig, IngressConfig, validate_checkpoint
from repro.serving.recovery import (
    SchedulerSnapshot,
    capture_scheduler,
    dumps_with_refs as _dumps_with_refs,
    loads_with_refs as _loads_with_refs,
    restore_scheduler,
)
from repro.serving.scheduler import StreamScheduler
from repro.serving.session import SessionTick
from repro.utils.rng import RandomState, hash_string
from repro.utils.timeseries import SampleRing

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Bounded wait (seconds) for a worker that should be exiting or replying:
#: the shutdown ack poll, process joins, and the obs-refresh round-trip.
#: Module-level so tests can shrink it when exercising the escalation path.
_STUCK_WORKER_TIMEOUT = 5.0

#: Sentinel for "use the supervisor's request_timeout" in reply waits.
_DEFAULT_TIMEOUT = object()

#: Command kinds that mutate worker state and therefore enter the journal.
_JOURNALED_COMMANDS = frozenset({"model", "detector", "open", "close", "tick"})

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SupervisorConfig:
    """Worker supervision policy for :class:`ShardedScheduler`.

    Attributes
    ----------
    snapshot_interval:
        Workers piggyback a deterministic shard snapshot on every N-th tick
        reply; the parent journals commands between snapshots, so a crashed
        worker resumes **bitwise exactly** (snapshot + journal replay +
        re-sent in-flight command).  ``None`` disables snapshots and
        journaling: respawned workers are rehydrated by re-opening every
        session fresh (PR 6 re-warm semantics — warm state lost).
    max_restarts:
        Circuit breaker: total respawns allowed per shard before its death
        becomes terminal (sessions degrade to dropped ticks, the
        unsupervised behavior).
    restart_backoff / backoff_factor / max_backoff:
        Bounded exponential sleep before each respawn:
        ``min(restart_backoff * backoff_factor**(n-1), max_backoff)``
        seconds for the n-th restart of a shard.
    request_timeout:
        Per-reply wall-clock budget in seconds.  A worker that exceeds it is
        presumed hung, force-killed (``recovery.forced_kills_total``), and
        recovered like any other death.  ``None`` (default) waits forever —
        death is then detected by pipe EOF only.
    """

    snapshot_interval: Optional[int] = 32
    max_restarts: int = 3
    restart_backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    request_timeout: Optional[float] = None

    def __post_init__(self):
        if self.snapshot_interval is not None and self.snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1 or None")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.restart_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive or None")


class ShardWorkerError(RuntimeError):
    """An exception raised inside a shard worker, surfaced parent-side.

    Carries the shard index plus the worker-side exception type, message,
    and formatted traceback (exceptions with custom constructors — e.g.
    :class:`~repro.serving.scheduler.SchedulerTickError` — do not survive
    pickling, so the facade re-raises them by description).
    """

    def __init__(self, shard: int, exc_type: str, message: str, traceback_text: str = ""):
        self.shard = int(shard)
        self.exc_type = exc_type
        self.worker_message = message
        self.worker_traceback = traceback_text
        super().__init__(f"shard {shard} worker raised {exc_type}: {message}")


class ShardDeadError(RuntimeError):
    """The facade needed a worker that is no longer alive."""


# The persistent-id pickling helpers live in repro.serving.recovery now
# (snapshots and the shard pipe share one token mechanism); the old private
# names are kept as aliases for existing callers and tests.

# ------------------------------------------------------------------ worker side
def _rederive_worker_rng(obj, shard_index: int) -> None:
    """Apply the shard-boundary RNG rule to a freshly rehydrated object.

    A pickled copy of a parent-side ``RandomState`` would silently re-draw
    the parent's stream (the aliasing bug the regression tests pin); the
    worker's copy must advance a stream of its own.  ``derive`` with the
    stable per-shard tag keeps the result reproducible for a fixed seed and
    shard layout.
    """
    rng = getattr(obj, "_rng", None)
    if isinstance(rng, RandomState):
        obj._rng = rng.derive(f"shard:{shard_index}")


def _worker_main(
    shard_index: int,
    conn,
    scheduler_kwargs: dict,
    obs_enabled: bool = False,
    snapshot_interval: Optional[int] = None,
) -> None:
    """Run one shard: a private StreamScheduler driven by pipe commands.

    With ``obs_enabled`` the worker owns its own :class:`Observer`; every
    tick reply ships the cumulative series snapshot plus the spans/events
    recorded since the previous reply (the parent stamps them with this
    shard's index).  Obs shipping rides the existing replies — no extra
    round-trips on the hot path.

    With ``snapshot_interval`` set, every N-th successful tick reply also
    carries a :class:`~repro.serving.recovery.SchedulerSnapshot` of the
    whole shard (scheduler + model/detector registries woven into one
    pickle graph, so shared objects keep aliasing on restore).  The tick
    counter survives restore via snapshot ``meta``, keeping the snapshot
    cadence — and therefore the recovered run's command stream — identical
    to an uninterrupted worker's.
    """
    import traceback as traceback_module

    observer = Observer() if obs_enabled else None
    scheduler = StreamScheduler(obs=observer, **scheduler_kwargs)
    models: Dict[str, GlucosePredictor] = {}
    detectors: Dict[int, object] = {}
    ticks_seen = 0

    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        command = message[0]
        try:
            if command == "shutdown":
                conn.send(("ok", None))
                break
            elif command == "model":
                _, lane_key, payload = message
                predictor = pickle.loads(payload)
                # Re-verify the rehydrated checkpoint against its
                # content-addressed lane key: a torn pickle must never serve.
                validate_checkpoint(predictor, expected_hash=lane_key)
                models[lane_key] = predictor
                conn.send(("ok", None))
            elif command == "detector":
                _, ref, payload = message
                detector = pickle.loads(payload)
                _rederive_worker_rng(detector, shard_index)
                detectors[ref] = detector
                conn.send(("ok", None))
            elif command == "open":
                _, spec = message
                adapters = (
                    _loads_with_refs(spec["adapters"], detectors)
                    if spec["adapters"] is not None
                    else None
                )
                scheduler.open_session(
                    spec["patient_label"],
                    models[spec["lane_key"]],
                    detectors=adapters,
                    session_id=spec["session_id"],
                    expected_state_hash=spec["expected_state_hash"],
                )
                conn.send(("ok", None))
            elif command == "tick":
                _, samples, now = message
                start = time.perf_counter()
                results = scheduler.tick(samples, now=now)
                elapsed = time.perf_counter() - start
                blocked = {
                    session_id
                    for session_id in results
                    if (session := scheduler.session(session_id)).health is not None
                    and session.health.blocked
                }
                ticks_seen += 1
                snapshot = None
                if snapshot_interval is not None and ticks_seen % snapshot_interval == 0:
                    # Tick boundaries are the only legal snapshot points;
                    # capture is pure reads, so a supervised-but-uncrashed
                    # run stays bitwise identical to an unsupervised one.
                    snapshot = capture_scheduler(
                        scheduler,
                        extra={"models": models, "detectors": detectors},
                        meta={
                            "ticks_seen": ticks_seen,
                            "shard_index": shard_index,
                            "lane_keys": sorted(models),
                            "detector_refs": sorted(detectors),
                        },
                    )
                conn.send(
                    (
                        "ok",
                        {
                            "ticks": results,
                            "blocked": blocked,
                            "elapsed": elapsed,
                            "obs": observer.drain() if observer is not None else None,
                            "snapshot": snapshot,
                        },
                    )
                )
            elif command == "restore":
                _, snap = message
                # Rebuild the whole shard from a supervisor-held snapshot.
                # No RNG re-derivation here: the snapshot graph already
                # holds each detector's *derived, advanced* worker stream —
                # re-deriving would rewind it and break resume parity.
                scheduler, extra = restore_scheduler(snap, obs=observer)
                extra = extra or {}
                models = extra.get("models") or {}
                detectors = extra.get("detectors") or {}
                ticks_seen = int(snap.meta.get("ticks_seen", 0))
                conn.send(("ok", None))
            elif command == "obs":
                conn.send(("ok", observer.drain() if observer is not None else None))
            elif command == "close":
                _, session_id = message
                session = scheduler.session(session_id)
                timeline = (
                    list(session.health.timeline) if session.health is not None else None
                )
                scheduler.close_session(session_id)
                conn.send(("ok", timeline))
            elif command == "timeline":
                _, session_id = message
                session = scheduler.session(session_id)
                timeline = (
                    list(session.health.timeline) if session.health is not None else None
                )
                conn.send(("ok", timeline))
            else:  # pragma: no cover - protocol misuse guard
                raise ValueError(f"unknown shard command {command!r}")
        except Exception as exc:
            conn.send(
                (
                    "raise",
                    {
                        "type": type(exc).__name__,
                        "message": str(exc),
                        "traceback": traceback_module.format_exc(),
                    },
                )
            )
    conn.close()


# ------------------------------------------------------------------ parent side
class _ShardHealthProxy:
    """Parent-side stand-in for a worker session's ``SessionHealth``.

    Exposes the one surface replay reporting consumes — ``timeline`` — by
    querying the owning worker on access, and caches the final timeline when
    the session closes (or its shard dies).
    """

    def __init__(self, fabric: "ShardedScheduler", session_id: str, shard: int):
        self._fabric = fabric
        self._session_id = session_id
        self._shard = shard
        self._final: Optional[list] = None

    def _finalize(self, timeline: Optional[list]) -> None:
        self._final = list(timeline) if timeline is not None else []

    @property
    def timeline(self) -> list:
        if self._final is not None:
            return self._final
        timeline = self._fabric._fetch_timeline(self._shard, self._session_id)
        return timeline if timeline is not None else []


class ShardSessionHandle:
    """Parent-side mirror of one session living in a shard worker.

    Duck-types the :class:`~repro.serving.session.PatientSession` surface
    the replayer and :class:`~repro.serving.attacker.OnlineAttacker`
    consume.  The delivered-sample ring is rebuilt from the ``SessionTick``
    stream the worker returns, so ``context_window`` matches the
    worker-side session exactly (served ticks push the post-ingress sample;
    a quarantine transition resets the ring).
    """

    def __init__(
        self,
        session_id: str,
        patient_label: str,
        predictor: GlucosePredictor,
        shard: int,
        lane_key: str,
        health: Optional[_ShardHealthProxy] = None,
    ):
        self.session_id = str(session_id)
        self.patient_label = str(patient_label)
        self.predictor = predictor
        self.shard = int(shard)
        self.history = int(predictor.history)
        self.ticks = 0
        self.health = health
        self.last_prediction: Optional[float] = None
        self._lane_key = lane_key
        self._ring = SampleRing(self.history)
        self._blocked = False

    @property
    def lane_key(self) -> str:
        """Hash of the model (weights + scaler) this session is served by."""
        return self._lane_key

    def window(self) -> Optional[np.ndarray]:
        """The last ``history`` delivered samples in time order, or None."""
        return self._ring.window()

    def context_window(self, incoming: np.ndarray) -> Optional[np.ndarray]:
        """The window the model would see if ``incoming`` were delivered now."""
        return self._ring.tail_with(incoming)

    # ------------------------------------------------------------- mirroring
    def _absorb(self, outcome: SessionTick, blocked: bool) -> None:
        """Mirror one worker tick: advance the clock and rebuild the ring."""
        self.ticks = outcome.tick + 1
        if not outcome.dropped:
            self._ring.push(outcome.sample)
            if outcome.prediction is not None:
                self.last_prediction = outcome.prediction
        if blocked and not self._blocked:
            # The worker quarantined (or failed) this session on this tick:
            # its ring and per-stream state were reset there; mirror that.
            self._ring.reset()
            self.last_prediction = None
        self._blocked = blocked


class _Shard:
    """One worker process plus its parent-side bookkeeping."""

    __slots__ = (
        "index",
        "process",
        "conn",
        "alive",
        "shipped_models",
        "shipped_detectors",
        "last_tick_latency",
        "obs_series",
        "snapshot",
        "journal",
        "restarts",
        "open_specs",
    )

    def __init__(self, index: int, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self.alive = True
        self.shipped_models: set = set()
        self.shipped_detectors: set = set()
        self.last_tick_latency: Optional[float] = None
        # Latest cumulative series snapshot shipped by the worker (each tick
        # reply replaces it; absorbed into the parent registry exactly once).
        self.obs_series: Optional[dict] = None
        # --- supervision state (populated only with a SupervisorConfig) ---
        # Latest worker-piggybacked shard snapshot, if any.
        self.snapshot: Optional[SchedulerSnapshot] = None
        # Acked state-mutating commands since that snapshot (or since birth
        # while none exists yet), replayed verbatim after a respawn.
        self.journal: List[tuple] = []
        # Respawns consumed against the max_restarts circuit breaker.
        self.restarts = 0
        # session_id -> re-open recipe for the snapshotless re-warm fallback.
        self.open_specs: Dict[str, dict] = {}


class ShardedScheduler:
    """Scale-out facade: the :class:`StreamScheduler` API over a process pool.

    Parameters
    ----------
    n_shards:
        Worker-process count.  ``1`` is a valid degenerate fabric (one
        worker, useful as the cheapest cross-process parity probe).
    use_single_fast_path, health, ingress, validate_checkpoints:
        Forwarded verbatim to every worker's private
        :class:`StreamScheduler`; see that class for semantics.  The
        configs must be picklable (the shipped dataclasses are).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork`` (cheap)
        and falls back to ``spawn``.  Payloads cross the pipe pickled under
        every method, so the serialization contract is always exercised.
    obs:
        Optional :class:`~repro.obs.Observer`.  When set, every worker owns
        its own Observer; tick replies ship each worker's cumulative series
        snapshot plus its new spans/events (stamped with the shard index on
        ingest).  Because every non-timing series is a per-session/per-lane
        event count and lanes are atomic placement units, the merged fabric
        snapshot (:meth:`obs_snapshot`) equals the single-process snapshot
        bitwise for any shard count — the metric half of the parity gate.
        ``None`` (the default) is bitwise inert.
    supervision:
        Optional :class:`SupervisorConfig`.  When set, dead workers are
        respawned (bounded exponential backoff, ``max_restarts`` circuit
        breaker) and rehydrated from their last piggybacked snapshot plus a
        journal replay — making the recovered run **bitwise identical** to
        one that never crashed (see the module-level *Crash recovery*
        section and ``docs/recovery.md``).  ``None`` (the default) keeps
        worker death terminal, exactly the pre-supervision behavior.

    Notes
    -----
    ``tick`` merges shard results **sorted by session id** — the returned
    mapping is identical (bitwise, including order) for any shard count.
    Without supervision, a worker that dies mid-fleet only degrades its own
    sessions: they receive ``dropped`` ticks with an ``error`` naming the
    dead shard, and the surviving shards' outputs are unchanged.  Use the
    facade as a context manager (or call :meth:`shutdown`) to reap the
    workers.
    """

    def __init__(
        self,
        n_shards: int = 2,
        use_single_fast_path: bool = True,
        health: Optional[HealthConfig] = None,
        ingress: Optional[IngressConfig] = None,
        validate_checkpoints: bool = False,
        start_method: Optional[str] = None,
        obs: Optional[Observer] = None,
        supervision: Optional[SupervisorConfig] = None,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.n_shards = int(n_shards)
        self.health = health
        self.start_method = start_method
        self.obs = obs
        self.supervision = supervision
        self._snapshot_interval = (
            supervision.snapshot_interval if supervision is not None else None
        )
        self._obs_absorbed = False
        self._scheduler_kwargs = dict(
            use_single_fast_path=use_single_fast_path,
            health=health,
            ingress=ingress,
            validate_checkpoints=validate_checkpoints,
        )
        self._context = multiprocessing.get_context(start_method)
        self._shards: List[_Shard] = []
        for index in range(self.n_shards):
            process, parent_conn = self._spawn_worker(index)
            self._shards.append(_Shard(index, process, parent_conn))
        self._sessions: Dict[str, ShardSessionHandle] = {}
        self._lane_keys: set = set()
        # id(predictor) -> (predictor, state_hash): hash each object once.
        self._hash_by_predictor: Dict[int, Tuple[object, str]] = {}
        # id(detector) -> (detector, ref): shared-object registry for
        # persistent-id pickling; holding the object keeps ids stable.
        self._detector_refs: Dict[int, Tuple[object, int]] = {}
        self._next_detector_ref = 0
        # lane_key -> parent-side predictor (supervised fabrics only): the
        # re-warm fallback re-ships weights from here after a respawn.
        self._lane_predictors: Dict[str, GlucosePredictor] = {}
        self._closed = False

    def _spawn_worker(self, index: int):
        """Start one worker process; returns ``(process, parent_conn)``."""
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(
                index,
                child_conn,
                self._scheduler_kwargs,
                self.obs is not None,
                self._snapshot_interval,
            ),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    # ------------------------------------------------------------------ plumbing
    def __enter__(self) -> "ShardedScheduler":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - best-effort reaping
        try:
            self.shutdown()
        except Exception:
            pass

    def shutdown(self) -> None:
        """Stop every worker process (idempotent).

        With obs enabled, each live worker's final telemetry is drained
        first and every worker's latest cumulative snapshot is folded into
        the parent registry exactly once, so post-shutdown
        ``obs.registry`` holds the whole-fabric series.

        A worker that ignores the shutdown command (wedged in native code,
        SIGSTOPped, …) cannot hang the parent: the ack wait is bounded, and
        the reaping loop escalates ``join`` → ``terminate`` → ``kill``,
        counting each escalation in ``recovery.forced_kills_total``.
        """
        if self._closed:
            return
        self._closed = True
        self._absorb_obs(refresh=True)
        for shard in self._shards:
            if shard.alive:
                try:
                    shard.conn.send(("shutdown",))
                    # Bounded ack wait: a stuck worker must not hang us.
                    if shard.conn.poll(_STUCK_WORKER_TIMEOUT):
                        shard.conn.recv()
                except (BrokenPipeError, EOFError, OSError):
                    pass
            try:
                shard.conn.close()
            except OSError:
                pass
            shard.alive = False
        for shard in self._shards:
            shard.process.join(timeout=_STUCK_WORKER_TIMEOUT)
            if shard.process.is_alive():
                logger.warning(
                    "shard %d worker ignored shutdown; escalating to terminate/kill",
                    shard.index,
                )
                shard.process.terminate()
                shard.process.join(timeout=_STUCK_WORKER_TIMEOUT)
                if shard.process.is_alive():
                    shard.process.kill()
                    shard.process.join(timeout=_STUCK_WORKER_TIMEOUT)
                if self.obs is not None:
                    self.obs.registry.inc(
                        "recovery.forced_kills_total", shard=shard.index
                    )

    def kill_worker(self, index: int) -> None:
        """Chaos hook: SIGKILL one worker process, as a crash would.

        Used by the kill-mix chaos scenarios and the recovery smoke: the
        parent-side bookkeeping is deliberately *not* told — the next
        interaction with the shard discovers the death exactly the way a
        real crash surfaces (pipe EOF / broken send) and, under
        supervision, recovers it.
        """
        shard = self._shards[index]
        process = shard.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=_STUCK_WORKER_TIMEOUT)

    def _mark_dead(self, shard: _Shard) -> None:
        if shard.alive:
            shard.alive = False
            logger.warning(
                "shard %d worker died; its sessions degrade to dropped ticks",
                shard.index,
            )
            if self.obs is not None:
                self.obs.registry.inc("serving.worker_deaths_total", shard=shard.index)
                self.obs.event("worker_death", shard_index=shard.index)
            try:
                shard.conn.close()
            except OSError:
                pass

    # ----------------------------------------------------------------- obs flow
    def _refresh_shard_obs(self, shard: _Shard) -> None:
        """Pull one live worker's latest telemetry (snapshot + new traces)."""
        if self.obs is None or not shard.alive:
            return
        try:
            # Bounded even without supervision: obs refresh runs at shutdown
            # too, and a wedged worker must not hang the parent there.
            payload = self._request(shard, ("obs",), timeout=_STUCK_WORKER_TIMEOUT)
        except (ShardDeadError, ShardWorkerError):
            return
        self._ingest_shard_obs(shard, payload)

    def _ingest_shard_obs(self, shard: _Shard, payload: Optional[dict]) -> None:
        """Store a worker's cumulative snapshot; append its drained traces."""
        if self.obs is None or payload is None:
            return
        shard.obs_series = payload["series"]
        self.obs.ingest_trace(payload["spans"], payload["events"], shard=shard.index)

    def _absorb_obs(self, refresh: bool) -> None:
        """Fold every worker's latest snapshot into the parent registry, once."""
        if self.obs is None or self._obs_absorbed:
            return
        if refresh:
            for shard in self._shards:
                self._refresh_shard_obs(shard)
        self._obs_absorbed = True
        for shard in self._shards:
            if shard.obs_series is not None:
                self.obs.registry.absorb(shard.obs_series)

    def obs_snapshot(self) -> Optional[Dict[str, dict]]:
        """Fabric-wide deterministic series snapshot (parent + all shards).

        Mid-run, live workers are polled for their freshest telemetry and
        the merge happens on copies (worker snapshots are cumulative, so
        absorbing them into the parent registry before shutdown would
        double-count on the next call).  After :meth:`shutdown` the parent
        registry already holds the folded total.
        """
        if self.obs is None:
            return None
        if self._obs_absorbed:
            return self.obs.registry.snapshot()
        for shard in self._shards:
            self._refresh_shard_obs(shard)
        snapshots = [self.obs.registry.snapshot()]
        snapshots.extend(
            shard.obs_series for shard in self._shards if shard.obs_series is not None
        )
        return MetricsRegistry.merge(snapshots)

    def _force_kill(self, shard: _Shard, reason: str) -> None:
        """SIGKILL an unresponsive worker; counted in recovery.forced_kills."""
        process = shard.process
        if process is not None and process.is_alive():
            logger.warning("force-killing shard %d worker: %s", shard.index, reason)
            process.kill()
            process.join(timeout=_STUCK_WORKER_TIMEOUT)
            if self.obs is not None:
                self.obs.registry.inc("recovery.forced_kills_total", shard=shard.index)

    def _drain_channel(self, shard: _Shard) -> None:
        """Discard any buffered replies so the pipe is back in protocol sync.

        Called when a worker reported an exception: the worker itself stays
        one-reply-per-command, but draining defensively guarantees the next
        command cannot pair with a stale reply even if the failure left
        something buffered.
        """
        try:
            while shard.conn.poll(0):
                shard.conn.recv()
        except (EOFError, OSError):
            pass

    def _recv_reply(self, shard: _Shard, kind: str, timeout=_DEFAULT_TIMEOUT):
        """Wait for one worker reply; marks the shard dead on EOF or timeout.

        ``timeout`` defaults to the supervisor's ``request_timeout`` (block
        forever without supervision); a worker that blows the budget is
        presumed hung and force-killed so recovery sees a plain death.
        """
        if timeout is _DEFAULT_TIMEOUT:
            timeout = (
                self.supervision.request_timeout if self.supervision is not None else None
            )
        try:
            if timeout is not None and not shard.conn.poll(timeout):
                self._force_kill(shard, f"no reply to {kind!r} within {timeout}s")
                self._mark_dead(shard)
                raise ShardDeadError(
                    f"shard {shard.index} worker timed out during {kind!r}"
                )
            return shard.conn.recv()
        except (EOFError, OSError) as exc:
            self._mark_dead(shard)
            raise ShardDeadError(
                f"shard {shard.index} worker died during {kind!r}"
            ) from exc

    def _raw_request(self, shard: _Shard, message: tuple, timeout=_DEFAULT_TIMEOUT):
        """One synchronous command round-trip with a worker (no recovery)."""
        if not shard.alive:
            raise ShardDeadError(f"shard {shard.index} worker is not alive")
        try:
            shard.conn.send(message)
        except (BrokenPipeError, EOFError, OSError) as exc:
            self._mark_dead(shard)
            raise ShardDeadError(
                f"shard {shard.index} worker died during {message[0]!r}"
            ) from exc
        status, payload = self._recv_reply(shard, message[0], timeout=timeout)
        if status == "raise":
            self._drain_channel(shard)
            raise ShardWorkerError(
                shard.index, payload["type"], payload["message"], payload["traceback"]
            )
        return payload

    def _request(self, shard: _Shard, message: tuple, timeout=_DEFAULT_TIMEOUT):
        """One command round-trip, with supervised recovery and journaling.

        Without supervision this is exactly the old single-round-trip path.
        With it, a dead worker is recovered (respawn + restore + journal
        replay) and the unacknowledged command — which, never having been
        acked, is by construction absent from both snapshot and journal —
        is re-sent once; successful state-mutating commands are journaled.
        """
        if self.supervision is not None and not shard.alive:
            self._recover_shard(shard)
        try:
            payload = self._raw_request(shard, message, timeout=timeout)
        except ShardDeadError:
            if self.supervision is None or not self._recover_shard(shard):
                raise
            payload = self._raw_request(shard, message, timeout=timeout)
        self._journal(shard, message)
        return payload

    def _journal(self, shard: _Shard, message: tuple) -> None:
        """Append an acked state-mutating command to the shard's replay log."""
        if self._snapshot_interval is None:
            return
        if message[0] in _JOURNALED_COMMANDS:
            shard.journal.append(message)

    # ----------------------------------------------------------------- recovery
    def _ensure_alive(self, shard: _Shard) -> bool:
        """True when the shard is (or was just brought back) alive."""
        return shard.alive or self._recover_shard(shard)

    def _reap(self, shard: _Shard) -> None:
        """Close the pipe and bury the old worker process before a respawn."""
        try:
            shard.conn.close()
        except OSError:
            pass
        process = shard.process
        if process is not None:
            if process.is_alive():
                process.kill()
            process.join(timeout=_STUCK_WORKER_TIMEOUT)

    def _recover_shard(self, shard: _Shard) -> bool:
        """Respawn a dead shard and rehydrate it; False when given up.

        Bounded exponential backoff between attempts; the ``max_restarts``
        circuit breaker converts a crash-looping shard back into the
        terminal dropped-ticks behavior.  Rehydration prefers exactness:
        restore the last piggybacked snapshot and replay the journal
        (bitwise resume), else replay the journal from worker birth (still
        bitwise), else — snapshots disabled — re-open every session fresh
        (PR 6 re-warm semantics).
        """
        if self.supervision is None or self._closed:
            return False
        supervision = self.supervision
        while True:
            if shard.restarts >= supervision.max_restarts:
                logger.error(
                    "shard %d exhausted %d restarts; circuit breaker open",
                    shard.index,
                    supervision.max_restarts,
                )
                return False
            shard.restarts += 1
            self._reap(shard)
            backoff = min(
                supervision.restart_backoff
                * supervision.backoff_factor ** (shard.restarts - 1),
                supervision.max_backoff,
            )
            if backoff > 0:
                time.sleep(backoff)
            process, conn = self._spawn_worker(shard.index)
            shard.process = process
            shard.conn = conn
            shard.alive = True
            shard.last_tick_latency = None
            mode = (
                "snapshot"
                if shard.snapshot is not None
                else ("journal" if self._snapshot_interval is not None else "rewarm")
            )
            logger.warning(
                "shard %d worker respawned (restart %d/%d, backoff %.3fs, mode=%s)",
                shard.index,
                shard.restarts,
                supervision.max_restarts,
                backoff,
                mode,
            )
            if self.obs is not None:
                self.obs.registry.inc("recovery.respawns_total", shard=shard.index)
                self.obs.event(
                    "worker_respawned",
                    shard_index=shard.index,
                    restarts=shard.restarts,
                    backoff_seconds=backoff,
                    mode=mode,
                    journal_entries=len(shard.journal),
                )
            try:
                if shard.snapshot is not None:
                    # Restore and replay block without a request timeout: a
                    # large snapshot may legitimately take longer than one
                    # tick's reply budget.
                    self._raw_request(shard, ("restore", shard.snapshot), timeout=None)
                    meta = shard.snapshot.meta
                    shard.shipped_models = set(
                        meta.get("lane_keys", shard.snapshot.models)
                    )
                    shard.shipped_detectors = set(meta.get("detector_refs", ()))
                    self._replay_journal(shard)
                elif self._snapshot_interval is not None:
                    # No snapshot yet: the journal reaches back to worker
                    # birth, so replaying it alone is still exact.
                    shard.shipped_models = set()
                    shard.shipped_detectors = set()
                    self._replay_journal(shard)
                else:
                    shard.shipped_models = set()
                    shard.shipped_detectors = set()
                    self._rewarm_shard(shard)
            except ShardDeadError:
                # The respawn died during rehydration; burn another restart
                # (or trip the breaker at the top of the loop).
                continue
            except ShardWorkerError as exc:
                # Deterministic replay raised inside the fresh worker —
                # recovery cannot converge, so stop burning restarts.
                logger.error("shard %d recovery replay failed: %s", shard.index, exc)
                self._mark_dead(shard)
                return False
            return True

    def _replay_journal(self, shard: _Shard) -> None:
        """Re-send every journaled command verbatim to a rehydrated worker.

        Replayed ticks re-advance detector RNG streams and inversion states
        to their exact pre-crash positions; their outcomes and traces are
        discarded (the parent already delivered them before the crash) —
        only the cumulative series mirror is refreshed, keeping obs totals
        identical to an uninterrupted run.  A replayed tick that crosses the
        snapshot cadence returns a fresh snapshot, which truncates the
        journal just as it would have live.
        """
        replay = list(shard.journal)
        remaining = replay
        for position, message in enumerate(replay):
            payload = self._raw_request(shard, message, timeout=None)
            if self.obs is not None:
                self.obs.registry.inc(
                    "recovery.journal_replayed_total", shard=shard.index
                )
            kind = message[0]
            if kind == "model":
                shard.shipped_models.add(message[1])
            elif kind == "detector":
                shard.shipped_detectors.add(message[1])
            elif kind == "tick":
                if self.obs is not None and payload.get("obs") is not None:
                    shard.obs_series = payload["obs"]["series"]
                if payload.get("snapshot") is not None:
                    shard.snapshot = payload["snapshot"]
                    remaining = replay[position + 1 :]
        shard.journal = remaining

    def _rewarm_shard(self, shard: _Shard) -> None:
        """Snapshotless fallback: re-open every session fresh on the respawn.

        PR 6 quarantine/re-warm semantics — model weights and detector
        objects are re-shipped from the parent registries, sessions restart
        at tick 0 with empty rings and cold adapter state, and the parent
        mirrors reset to match.  Exact for the model (weights are
        immutable) but *not* resume-exact: warm stream state is lost.
        """
        detector_by_ref = {ref: obj for obj, ref in self._detector_refs.values()}
        for session_id, spec in shard.open_specs.items():
            lane_key = spec["lane_key"]
            if lane_key not in shard.shipped_models:
                payload = pickle.dumps(
                    self._lane_predictors[lane_key], protocol=_PICKLE_PROTOCOL
                )
                self._raw_request(shard, ("model", lane_key, payload), timeout=None)
                shard.shipped_models.add(lane_key)
            for ref in spec["detector_refs"]:
                if ref not in shard.shipped_detectors:
                    payload = pickle.dumps(
                        detector_by_ref[ref], protocol=_PICKLE_PROTOCOL
                    )
                    self._raw_request(shard, ("detector", ref, payload), timeout=None)
                    shard.shipped_detectors.add(ref)
            self._raw_request(shard, ("open", spec["spec"]), timeout=None)
            handle = self._sessions[session_id]
            handle.ticks = 0
            handle.last_prediction = None
            handle._ring.reset()
            handle._blocked = False
            if self.obs is not None:
                self.obs.registry.inc(
                    "recovery.sessions_rewarmed_total", shard=shard.index
                )

    # ------------------------------------------------------------------ sessions
    def shard_for(self, lane_key: str, session_id: str) -> int:
        """Deterministic shard assignment, independent of open order.

        Placement is **lane-grained**: every session served by the same
        model (equal ``state_hash``) lands on the same worker.  Splitting a
        lane would change the stacked step's batch composition, and BLAS
        kernels round differently per batch shape — a 1-ulp divergence the
        bitwise parity gate rejects.  Lanes are the atomic placement unit;
        parallelism comes from lanes spreading across workers (the
        personalized-zoo serving shape), not from splitting one lane.
        """
        del session_id  # placement is content-addressed by lane only
        return int(hash_string(f"lane:{lane_key}") % self.n_shards)

    def _lane_key_for(self, predictor: GlucosePredictor) -> str:
        memo = self._hash_by_predictor.get(id(predictor))
        if memo is None or memo[0] is not predictor:
            memo = self._hash_by_predictor[id(predictor)] = (
                predictor,
                predictor.state_hash(),
            )
        return memo[1]

    def _ship_detectors(self, shard: _Shard, detectors) -> None:
        for adapter in detectors.values():
            detector = getattr(adapter, "detector", None)
            if detector is None:
                continue
            entry = self._detector_refs.get(id(detector))
            if entry is None or entry[0] is not detector:
                entry = self._detector_refs[id(detector)] = (
                    detector,
                    self._next_detector_ref,
                )
                self._next_detector_ref += 1
            ref = entry[1]
            if ref not in shard.shipped_detectors:
                payload = pickle.dumps(detector, protocol=_PICKLE_PROTOCOL)
                self._request(shard, ("detector", ref, payload))
                shard.shipped_detectors.add(ref)

    def open_session(
        self,
        patient_label: str,
        predictor: GlucosePredictor,
        detectors=None,
        session_id: Optional[str] = None,
        expected_state_hash: Optional[str] = None,
    ) -> ShardSessionHandle:
        """Open a session on its deterministic shard; returns a parent handle.

        Semantics mirror :meth:`StreamScheduler.open_session`: checkpoint
        validation happens parent-side (fail fast, identical exceptions)
        *and* worker-side on rehydration; sessions with equal lane hashes
        landing on the same worker share that worker's lane.
        """
        session_id = str(session_id if session_id is not None else patient_label)
        if session_id in self._sessions:
            raise ValueError(f"session id {session_id!r} already exists")
        if expected_state_hash is not None:
            lane_key = validate_checkpoint(predictor, expected_state_hash)
        else:
            lane_key = self._lane_key_for(predictor)
        shard = self._shards[self.shard_for(lane_key, session_id)]
        if lane_key not in shard.shipped_models:
            payload = pickle.dumps(predictor, protocol=_PICKLE_PROTOCOL)
            self._request(shard, ("model", lane_key, payload))
            shard.shipped_models.add(lane_key)
        adapters_payload = None
        if detectors:
            self._ship_detectors(shard, detectors)
            adapters_payload = _dumps_with_refs(dict(detectors), self._detector_refs)
        spec = {
            "session_id": session_id,
            "patient_label": str(patient_label),
            "lane_key": lane_key,
            "adapters": adapters_payload,
            "expected_state_hash": expected_state_hash,
        }
        self._request(shard, ("open", spec))
        proxy = (
            _ShardHealthProxy(self, session_id, shard.index)
            if self.health is not None
            else None
        )
        handle = ShardSessionHandle(
            session_id, patient_label, predictor, shard.index, lane_key, health=proxy
        )
        self._sessions[session_id] = handle
        self._lane_keys.add(lane_key)
        if self.supervision is not None:
            # Re-warm recipe: enough to rebuild the session from parent-side
            # objects when a respawn has no snapshot/journal to replay.
            self._lane_predictors[lane_key] = predictor
            refs = []
            if detectors:
                for adapter in detectors.values():
                    detector = getattr(adapter, "detector", None)
                    if detector is not None:
                        refs.append(self._detector_refs[id(detector)][1])
            shard.open_specs[session_id] = {
                "lane_key": lane_key,
                "detector_refs": tuple(refs),
                "spec": spec,
            }
        return handle

    def close_session(self, session_id: str) -> None:
        """Tear a session down on its shard; finalizes its health timeline."""
        handle = self._sessions.pop(str(session_id))
        shard = self._shards[handle.shard]
        timeline: Optional[list] = None
        if shard.alive or self.supervision is not None:
            try:
                timeline = self._request(shard, ("close", handle.session_id))
            except ShardDeadError:
                timeline = None
        # Popped only after the round-trip: a supervised re-warm recovery
        # mid-close must still re-open the session it is about to close.
        shard.open_specs.pop(handle.session_id, None)
        if handle.health is not None:
            handle.health._finalize(timeline)

    @property
    def n_sessions(self) -> int:
        return len(self._sessions)

    @property
    def n_lanes(self) -> int:
        """Distinct models ever served (content-addressed, fabric-wide)."""
        return len(self._lane_keys)

    def session(self, session_id: str) -> ShardSessionHandle:
        return self._sessions[str(session_id)]

    def _fetch_timeline(self, shard_index: int, session_id: str) -> Optional[list]:
        shard = self._shards[shard_index]
        if not shard.alive:
            return None
        try:
            return self._request(shard, ("timeline", session_id))
        except ShardDeadError:
            return None

    # ------------------------------------------------------------------- ticking
    @property
    def last_tick_latencies(self) -> Dict[int, float]:
        """Worker-measured seconds each live shard spent in its last tick."""
        return {
            shard.index: shard.last_tick_latency
            for shard in self._shards
            if shard.last_tick_latency is not None
        }

    def _dead_shard_tick(self, handle: ShardSessionHandle, sample) -> SessionTick:
        if self.obs is not None:
            self.obs.registry.inc(
                "serving.ticks_dropped_total", lane=handle._lane_key, reason="dead_shard"
            )
        outcome = SessionTick(
            session_id=handle.session_id,
            tick=handle.ticks,
            sample=np.array(sample, dtype=np.float64, copy=True),
            prediction=None,
            dropped=True,
            error=f"shard {handle.shard} worker died",
        )
        handle.ticks += 1
        return outcome

    def tick(
        self, samples: Mapping[str, np.ndarray], now: Optional[int] = None
    ) -> Dict[str, SessionTick]:
        """Deliver one tick fleet-wide; see :meth:`StreamScheduler.tick`.

        Samples are routed to the owning shards, the workers step their
        schedulers concurrently, and the merged outcomes come back **sorted
        by session id** — deterministic and independent of shard layout.
        Sessions on a dead shard receive ``dropped`` outcomes naming it;
        everyone else is served normally.  ``now`` (the caller's device-clock
        slot) is forwarded verbatim to every worker; like the single-process
        scheduler it is purely observational.
        """
        per_shard: Dict[int, Dict[str, np.ndarray]] = {}
        merged: Dict[str, SessionTick] = {}
        for session_id, sample in samples.items():
            handle = self._sessions[str(session_id)]
            shard = self._shards[handle.shard]
            if not shard.alive and not self._ensure_alive(shard):
                merged[handle.session_id] = self._dead_shard_tick(handle, sample)
                continue
            per_shard.setdefault(handle.shard, {})[handle.session_id] = sample

        # Fan out first so the workers compute concurrently, then collect.
        # A failed send is left for the collect phase to handle: under
        # supervision the recv on the broken pipe surfaces the death and
        # _exchange_tick recovers + re-sends; without it the sessions are
        # degraded immediately, exactly as before.
        engaged: List[Tuple[_Shard, Dict[str, np.ndarray]]] = []
        for shard_index, shard_samples in per_shard.items():
            shard = self._shards[shard_index]
            try:
                shard.conn.send(("tick", shard_samples, now))
            except (BrokenPipeError, OSError):
                self._mark_dead(shard)
                if self.supervision is None:
                    for session_id, sample in shard_samples.items():
                        merged[session_id] = self._dead_shard_tick(
                            self._sessions[session_id], sample
                        )
                    continue
            engaged.append((shard, shard_samples))

        failures: List[ShardWorkerError] = []
        for shard, shard_samples in engaged:
            message = ("tick", shard_samples, now)
            status, payload = self._exchange_tick(shard, message)
            if status is None:
                for session_id, sample in shard_samples.items():
                    merged[session_id] = self._dead_shard_tick(
                        self._sessions[session_id], sample
                    )
                continue
            if status == "raise":
                # Drain every engaged shard before raising so the pipes stay
                # in protocol sync; the first failing shard's error wins.
                self._drain_channel(shard)
                failures.append(
                    ShardWorkerError(
                        shard.index,
                        payload["type"],
                        payload["message"],
                        payload["traceback"],
                    )
                )
                continue
            if self._snapshot_interval is not None:
                snapshot = payload.get("snapshot")
                if snapshot is not None:
                    # The snapshot includes this tick: it supersedes the
                    # journal, and this tick must not be journaled after it.
                    shard.snapshot = snapshot
                    shard.journal = []
                    if self.obs is not None:
                        self.obs.registry.inc(
                            "recovery.snapshots_received_total", shard=shard.index
                        )
                else:
                    self._journal(shard, message)
            shard.last_tick_latency = payload["elapsed"]
            self._ingest_shard_obs(shard, payload.get("obs"))
            blocked = payload["blocked"]
            for session_id, outcome in payload["ticks"].items():
                self._sessions[session_id]._absorb(outcome, session_id in blocked)
                merged[session_id] = outcome
        if failures:
            raise failures[0]
        return dict(sorted(merged.items()))

    def _exchange_tick(self, shard: _Shard, message: tuple):
        """Collect one shard's tick reply, recovering + re-sending at most once.

        Returns the worker's ``(status, payload)`` pair, or ``(None, None)``
        when the shard is (now terminally) dead.  The re-sent tick was never
        acknowledged by the dead worker, so after snapshot restore + journal
        replay the fresh worker computes it from exactly the pre-tick state
        — the recovered outcome is bitwise the one the crashed worker would
        have produced.
        """
        for attempt in (0, 1):
            try:
                if attempt:
                    shard.conn.send(message)
                return self._recv_reply(shard, "tick")
            except (BrokenPipeError, OSError):
                self._mark_dead(shard)
            except ShardDeadError:
                pass
            if attempt or not self._recover_shard(shard):
                return None, None
        return None, None  # pragma: no cover - loop always returns
