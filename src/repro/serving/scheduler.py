"""Session batching: one stacked incremental model step per tick per model.

The scheduler is the serving-side twin of the attack campaign's cohort
batching: instead of merging the windows of patients sharing a model into one
lockstep *search*, it merges the live streams of sessions sharing a model into
one stacked incremental *step*.  Sessions are grouped into **lanes** by
:meth:`GlucosePredictor.state_hash` — weights + scaler, not object identity —
so separately loaded copies of the same checkpoint share a lane.  Each lane
holds one stacked :class:`~repro.nn.recurrent.BiLSTMStreamState` with a slot
per session; a tick gathers whichever sessions received a sample, advances
their slots with one ``step_stream`` call, and batches all detector queries
that share an underlying detector object into one ``predict`` per detector.

Capacity is dynamic: lanes double their slot arrays when full and recycle the
slots of closed sessions, so thousands of sessions can come and go without
rebuilding any state.

Graceful degradation (``repro.serving.health``) threads through the tick:
with a :class:`~repro.serving.health.HealthConfig` and/or
:class:`~repro.serving.health.IngressConfig` the scheduler validates every
sample before it can touch recurrent state, isolates lane/detector failures
to the sessions they hit (quarantining them while every other lane ticks
on), and re-admits quarantined sessions after a bounded backoff.  With
neither configured the tick path is byte-for-byte the pre-robustness one;
failures then surface as :class:`SchedulerTickError` naming the offending
sessions and ticks instead of an anonymous traceback.
"""

from __future__ import annotations

import bisect
import logging
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.glucose.predictor import GlucosePredictor
from repro.detectors.streaming import StreamVerdict
from repro.serving.health import (
    HealthConfig,
    IngressConfig,
    SessionHealth,
    validate_checkpoint,
)
from repro.serving.session import PatientSession, SessionTick

logger = logging.getLogger(__name__)

#: Initial number of slots a fresh lane allocates.
_INITIAL_LANE_CAPACITY = 4


class SchedulerTickError(RuntimeError):
    """A tick failed for named sessions (raised when health isolation is off).

    Wraps the underlying exception with the session labels and tick indices
    it poisoned, so a fleet-scale failure is attributable to a stream
    instead of an anonymous traceback.
    """

    def __init__(self, stage: str, sessions, exc: BaseException):
        self.stage = stage
        self.session_ids = [session.session_id for session in sessions]
        self.ticks = [session.ticks for session in sessions]
        detail = ", ".join(
            f"{session.session_id!r}@tick {session.ticks}" for session in sessions
        )
        super().__init__(
            f"{stage} failed for session(s) {detail}: {type(exc).__name__}: {exc}"
        )


class _Lane:
    """All sessions served by one model: a stacked stream state plus slots."""

    __slots__ = ("predictor", "state", "sessions", "_free")

    def __init__(self, predictor: GlucosePredictor, capacity: int = _INITIAL_LANE_CAPACITY):
        self.predictor = predictor
        self.state = predictor.stream_state(capacity)
        self.sessions: Dict[int, PatientSession] = {}
        self._free: List[int] = list(range(capacity))

    def allocate(self, session: PatientSession) -> int:
        if not self._free:
            old = self.state.n_streams
            self.state.grow(max(2 * old, _INITIAL_LANE_CAPACITY))
            self._free = list(range(old, self.state.n_streams))
        slot = self._free.pop(0)
        self.sessions[slot] = session
        return slot

    def release(self, slot: int) -> None:
        self.sessions.pop(slot, None)
        self.state.reset_slots(np.array([slot]))
        bisect.insort(self._free, slot)

    def __len__(self) -> int:
        return len(self.sessions)


class StreamScheduler:
    """Coalesce concurrent patient streams into per-model batched ticks.

    Parameters
    ----------
    use_single_fast_path:
        When True (the default) a tick that delivers to exactly one session
        bypasses the lane stacking and detector-grouping bookkeeping and
        runs a slim single-stream path (:meth:`GlucosePredictor.step_one`).
        The arithmetic is identical to the batched path on a one-row batch,
        so predictions and verdicts are bitwise-equal
        (``tests/test_serving.py`` pins this); only the per-tick Python
        overhead differs.  Set False to force every tick through the
        batched path (benchmark/parity use).
    health:
        Optional :class:`~repro.serving.health.HealthConfig`.  Every opened
        session gets a :class:`~repro.serving.health.SessionHealth` state
        machine; errors (ingress rejections, lane/detector exceptions,
        non-finite predictions) degrade and eventually quarantine the
        session — its lane slot, ring, and adapters are reset and its
        deliveries dropped until a bounded backoff re-admits it — while
        every other session keeps ticking.  None (the default) disables all
        health bookkeeping: failures raise :class:`SchedulerTickError`.
    ingress:
        Optional :class:`~repro.serving.health.IngressConfig` validating
        every delivered sample before any model or detector sees it.  None
        admits samples unchecked (the previous behavior).
    validate_checkpoints:
        When True, :meth:`open_session` refuses predictors whose weights or
        scaler statistics contain non-finite values
        (:func:`~repro.serving.health.validate_checkpoint`).
    coalesce_cold_batches:
        When True (the default) and one *phased* incremental detector object
        (one exposing ``begin_scores_incremental`` — MAD-GAN) backs two or
        more detector groups in a tick (i.e. is shared across lanes), the
        scheduler runs each group's warm phase separately but merges every
        group's owed cold inversions into ONE batched
        :meth:`~repro.detectors.madgan.MADGANDetector.invert_cold` call per
        detector — closing the ROADMAP gap where deferred cold fallbacks
        coalesced per-detector-group only.  Verdicts are identical to the
        uncoalesced path (the cold-start latents are drawn in the warm phase
        so the detector RNG stream never shifts; pinned by
        ``tests/test_detectors_vae_hmm.py``); only the inversion batch count
        drops.  Deterministic detectors (LSTM-VAE, HMM, kNN) never take this
        path, so lane-scoped bitwise parity is untouched.  Set False to force
        the per-group cold batches (parity/benchmark comparisons).
    obs:
        Optional :class:`~repro.obs.Observer`.  When set, every tick emits
        deterministic metrics (lane/detector/ingress/health series — see
        ``docs/observability.md`` for the catalog) and trace spans covering
        the tick stages (ingress → lane_gather → lane_step → detector_batch
        → health → merge).  None (the default) is bitwise inert: no
        counter, span, or event is recorded and the tick path is
        byte-for-byte the uninstrumented one
        (``scripts/check_parity.py::run_obs_smoke`` gates this).
    """

    def __init__(
        self,
        use_single_fast_path: bool = True,
        health: Optional[HealthConfig] = None,
        ingress: Optional[IngressConfig] = None,
        validate_checkpoints: bool = False,
        coalesce_cold_batches: bool = True,
        obs=None,
    ):
        self.use_single_fast_path = bool(use_single_fast_path)
        self.health = health
        self.ingress = ingress
        self.validate_checkpoints = bool(validate_checkpoints)
        self.coalesce_cold_batches = bool(coalesce_cold_batches)
        self.obs = obs
        self._lanes: Dict[str, _Lane] = {}
        self._sessions: Dict[str, PatientSession] = {}
        # Device-clock slot of the tick in flight (tick(..., now=)); stamps
        # health transitions and spans with the delivering global tick.
        self._now: Optional[int] = None

    # ---------------------------------------------------------------- sessions
    def open_session(
        self,
        patient_label: str,
        predictor: GlucosePredictor,
        detectors=None,
        session_id: Optional[str] = None,
        expected_state_hash: Optional[str] = None,
    ) -> PatientSession:
        """Register a new live stream served by ``predictor``.

        Sessions landing on models with equal :meth:`GlucosePredictor.state_hash`
        share a lane (and therefore a stacked model step) even when the
        predictor objects are distinct.

        ``expected_state_hash`` pins the model this session must be served
        by: the predictor is validated (hash match + non-finite weight scan)
        and rejected with :class:`~repro.serving.health.CheckpointError` on
        mismatch — as is any corrupted checkpoint when the scheduler runs
        with ``validate_checkpoints=True``.
        """
        session_id = str(session_id if session_id is not None else patient_label)
        if session_id in self._sessions:
            raise ValueError(f"session id {session_id!r} already exists")
        if self.validate_checkpoints or expected_state_hash is not None:
            # validate_checkpoint returns the hash it verified, so the lane
            # key costs no second digest.
            lane_key = validate_checkpoint(predictor, expected_state_hash)
        else:
            lane_key = predictor.state_hash()
        lane = self._lanes.get(lane_key)
        if lane is None:
            lane = self._lanes[lane_key] = _Lane(predictor)
        session = PatientSession(session_id, patient_label, predictor, detectors=detectors)
        if self.health is not None:
            session.health = SessionHealth(self.health, session_id=session_id, obs=self.obs)
        slot = lane.allocate(session)
        session._attach(self, lane_key, slot)
        self._sessions[session_id] = session
        if self.obs is not None:
            self.obs.registry.inc("serving.sessions_opened_total", lane=lane_key)
        return session

    def close_session(self, session_id: str) -> None:
        """Tear a session down and recycle its lane slot."""
        session = self._sessions.pop(str(session_id))
        lane = self._lanes[session._lane_key]
        lane.release(session._slot)
        if not lane.sessions:
            del self._lanes[session._lane_key]
        if self.obs is not None:
            self.obs.registry.inc("serving.sessions_closed_total", lane=session._lane_key)
        session._attach(None, None, None)

    @property
    def n_sessions(self) -> int:
        return len(self._sessions)

    @property
    def n_lanes(self) -> int:
        """Number of distinct models currently being served."""
        return len(self._lanes)

    def session(self, session_id: str) -> PatientSession:
        return self._sessions[str(session_id)]

    def obs_snapshot(self) -> Optional[Dict[str, dict]]:
        """Deterministic series snapshot, or None when uninstrumented.

        API-symmetric with
        :meth:`repro.serving.shard.ShardedScheduler.obs_snapshot`, which
        returns the order-invariant merge over its workers.
        """
        return self.obs.registry.snapshot() if self.obs is not None else None

    # --------------------------------------------------------------- recovery
    def snapshot(self, extra=None, meta=None):
        """Capture the complete deterministic state at a tick boundary.

        Returns a :class:`~repro.serving.recovery.SchedulerSnapshot` from
        which :meth:`restore` rebuilds a scheduler whose subsequent ticks
        are **bitwise equal** to this scheduler's (sample rings, lane stream
        states, detector adapter/inversion states, health machines with
        backoff depth, and RNG positions all travel; model weights are
        content-addressed once per lane).  Call between ticks only — the
        resume-parity contract is defined at tick boundaries
        (``docs/recovery.md``).  ``extra`` / ``meta`` are for embedders like
        the shard worker (see :func:`repro.serving.recovery.capture_scheduler`).
        """
        from repro.serving.recovery import capture_scheduler

        return capture_scheduler(self, extra=extra, meta=meta)

    @classmethod
    def restore(cls, snapshot, obs=None) -> "StreamScheduler":
        """Rebuild a scheduler from a :meth:`snapshot` capture.

        ``obs`` becomes the restored scheduler's observer; the snapshot's
        cumulative metric series is absorbed into it so counters continue
        from their pre-crash values.  Model payloads are re-validated
        against their content-address
        (:func:`~repro.serving.health.validate_checkpoint`) before any
        session is served.
        """
        from repro.serving.recovery import restore_scheduler

        scheduler, _ = restore_scheduler(snapshot, obs=obs)
        return scheduler

    # ----------------------------------------------------------------- health
    def _quarantine_session(self, session: PatientSession) -> None:
        """Reset a quarantined session's per-stream state (it may be corrupt)."""
        session._reset_stream_state()
        lane = self._lanes[session._lane_key]
        lane.state.reset_slots(np.array([session._slot]))

    def _dropped_tick(
        self, session: PatientSession, sample: np.ndarray, ingress: str, error=None
    ) -> SessionTick:
        """Advance the session's tick counter without serving the sample."""
        tick_index = session.ticks
        session.ticks += 1
        if self.obs is not None:
            self.obs.registry.inc(
                "serving.ticks_dropped_total", lane=session._lane_key, reason=ingress
            )
        return SessionTick(
            session_id=session.session_id,
            tick=tick_index,
            sample=np.array(sample, dtype=np.float64, copy=True),
            prediction=None,
            ingress=ingress,
            dropped=True,
            error=error,
        )

    def _admit(
        self, samples: Mapping[str, np.ndarray]
    ) -> Tuple[List[Tuple[PatientSession, np.ndarray, Optional[str]]], Dict[str, SessionTick]]:
        """Validate/gate one tick's deliveries before any state is touched.

        Returns the admitted ``(session, sample, ingress_tag)`` triples (in
        delivery order) plus the dropped :class:`SessionTick` outcomes for
        quarantined or rejected deliveries.  With neither health nor ingress
        configured this is exactly the old per-delivery shape validation.
        """
        admitted: List[Tuple[PatientSession, np.ndarray, Optional[str]]] = []
        dropped: Dict[str, SessionTick] = {}
        for session_id, sample in samples.items():
            session = self._sessions[str(session_id)]
            sample = np.asarray(sample, dtype=np.float64)
            if sample.shape != (session.predictor.n_features,):
                raise ValueError(
                    f"sample for session {session_id!r} must have shape "
                    f"({session.predictor.n_features},), got {sample.shape}"
                )
            health = session.health
            if health is not None and health.blocked:
                if not health.admit(session.ticks, delivered_at=self._now):
                    dropped[session.session_id] = self._dropped_tick(
                        session, sample, ingress="quarantined"
                    )
                    continue
                # Re-admitted on probation: this very delivery is served.
            tag: Optional[str] = None
            if self.ingress is not None:
                delivered, tag = self.ingress.validate(sample, session.last_sample)
                if delivered is None:
                    outcome = self._dropped_tick(session, sample, ingress="rejected")
                    dropped[session.session_id] = outcome
                    if health is not None:
                        health.record_error(
                            outcome.tick, "ingress: rejected sample", delivered_at=self._now
                        )
                        if health.blocked:
                            self._quarantine_session(session)
                    continue
                if tag is not None:
                    sample = delivered
                    if self.obs is not None:
                        self.obs.registry.inc(
                            "serving.ingress_repaired_total",
                            lane=session._lane_key,
                            tag=tag,
                        )
                    if health is not None:
                        health.record_error(
                            session.ticks, f"ingress: {tag} sample", delivered_at=self._now
                        )
                        if health.blocked:
                            outcome = self._dropped_tick(
                                session, sample, ingress="quarantined"
                            )
                            dropped[session.session_id] = outcome
                            self._quarantine_session(session)
                            continue
            admitted.append((session, sample, tag))
        return admitted, dropped

    def _health_after_step(self, session: PatientSession, outcome: SessionTick) -> None:
        """Post-step bookkeeping: non-finite predictions are errors."""
        # A None prediction is legitimate only while the stream warms up;
        # once the session's window ring is full a non-finite prediction
        # means the recurrent state is poisoned (e.g. a NaN slipped in
        # before ingress validation was enabled).
        non_finite = outcome.prediction is None and session.window() is not None
        if non_finite and self.obs is not None:
            self.obs.registry.inc(
                "serving.nonfinite_predictions_total", lane=session._lane_key
            )
        health = session.health
        if health is None:
            return
        if non_finite:
            outcome.error = outcome.error or "non-finite prediction"
            health.record_error(outcome.tick, "non-finite prediction", delivered_at=self._now)
            if health.blocked:
                self._quarantine_session(session)
        else:
            health.record_clean(outcome.tick, delivered_at=self._now)

    def _lane_failure(
        self,
        lane_sessions: List[PatientSession],
        stacked: np.ndarray,
        exc: BaseException,
        results: Dict[str, SessionTick],
    ) -> None:
        """One lane's stacked step raised: quarantine its sessions or re-raise."""
        if self.health is None:
            raise SchedulerTickError("lane step", lane_sessions, exc) from exc
        lane_key = lane_sessions[0]._lane_key
        session_ids = [session.session_id for session in lane_sessions]
        logger.warning(
            "lane %s step failed for session(s) %s at delivered_at=%s: %s: %s",
            lane_key,
            session_ids,
            self._now,
            type(exc).__name__,
            exc,
        )
        if self.obs is not None:
            self.obs.registry.inc("serving.lane_failures_total", lane=lane_key)
            self.obs.event(
                "lane_failure",
                lane=lane_key,
                sessions=session_ids,
                delivered_at=self._now,
                error=f"{type(exc).__name__}: {exc}",
            )
        for session, sample in zip(lane_sessions, stacked):
            outcome = self._dropped_tick(
                session,
                sample,
                ingress="quarantined",
                error=f"lane step: {type(exc).__name__}: {exc}",
            )
            results[session.session_id] = outcome
            # A partially applied stacked step may have corrupted the slot:
            # quarantine immediately rather than waiting out the threshold.
            session.health.quarantine_now(
                outcome.tick, f"lane step raised: {exc}", delivered_at=self._now
            )
            self._quarantine_session(session)

    # ----------------------------------------------------------------- ticking
    def tick(
        self, samples: Mapping[str, np.ndarray], now: Optional[int] = None
    ) -> Dict[str, SessionTick]:
        """Deliver one raw sample to each named session; return their outcomes.

        Parameters
        ----------
        samples:
            ``{session_id: (n_features,) raw sample}`` — **sample** units
            (one unscaled measurement per stream), not windows.  Sessions
            not named are untouched (a device that missed a transmission
            slot); their rings simply don't advance.
        now:
            Optional device-clock slot (the replayer's global tick) this
            delivery happened at.  Purely observational: it stamps health
            transitions (``HealthEvent.delivered_at``) and trace spans so
            quarantine events line up with the tick that caused them; it
            never affects predictions or verdicts.

        Returns
        -------
        ``{session_id: SessionTick}`` for exactly the named sessions.  A
        tick's ``prediction`` is None while that stream's window is warming
        up (its first ``history - 1`` delivered samples), then a float in
        mg/dL; window-unit detector verdicts carry ``warming=True`` over the
        same span.  With health/ingress configured some outcomes may be
        ``dropped`` (quarantined session, rejected sample) — those ticks ran
        no model step and carry no verdicts.

        All model work is one ``step_stream`` call per lane; all detector
        work is one ``predict`` call per distinct underlying detector object
        *per lane* (incremental adapters instead share one
        ``predict_incremental`` call, which also advances their per-stream
        states exactly once).  Batches never cross lanes: BLAS rounding is
        batch-shape dependent, so lane-scoped batching keeps every session's
        outputs bitwise independent of which other lanes share its
        detectors — the invariant the sharded fabric's parity gate pins.  A
        single-session tick takes the slim fast path instead — see
        ``use_single_fast_path``.
        """
        obs = self.obs
        self._now = now
        tick_started = perf_counter() if obs is not None else 0.0
        events_mark = len(obs.events) if obs is not None else 0
        admitted, results = self._admit(samples)
        if obs is not None:
            obs.emit_span(
                "ingress",
                tick_started,
                tick=now,
                delivered=len(samples),
                admitted=len(admitted),
                dropped=len(results),
            )
        if not admitted:
            if obs is not None:
                self._finish_tick_obs(tick_started, events_mark, results)
            return results
        if self.use_single_fast_path and len(admitted) == 1:
            session, sample, tag = admitted[0]
            results.update(self._tick_single(session, sample, tag))
            if obs is not None:
                self._finish_tick_obs(tick_started, events_mark, results)
            return results
        gather_started = perf_counter() if obs is not None else 0.0
        per_lane: Dict[str, List[Tuple[PatientSession, np.ndarray, Optional[str]]]] = {}
        for session, sample, tag in admitted:
            per_lane.setdefault(session._lane_key, []).append((session, sample, tag))
        if obs is not None:
            obs.emit_span("lane_gather", gather_started, tick=now, lanes=len(per_lane))

        # (detector object id, view shape) -> stacked views + where they go
        pending_views: Dict[tuple, dict] = {}

        for lane_key, items in per_lane.items():
            lane = self._lanes[lane_key]
            lane_sessions = [session for session, _, _ in items]
            stacked = np.stack([sample for _, sample, _ in items])
            rows = np.array([session._slot for session in lane_sessions])
            lane_started = perf_counter() if obs is not None else 0.0
            try:
                predictions = lane.predictor.step_stream(stacked, lane.state, rows=rows)
            except Exception as exc:
                self._lane_failure(lane_sessions, stacked, exc, results)
                continue

            for (session, _, tag), sample, prediction in zip(items, stacked, predictions):
                tick_index = session.ticks
                session.ticks += 1
                session._push_raw(sample)
                value = None if np.isnan(prediction) else float(prediction)
                session.last_prediction = value if value is not None else session.last_prediction
                outcome = SessionTick(
                    session_id=session.session_id,
                    tick=tick_index,
                    sample=sample.copy(),
                    prediction=value,
                    ingress=tag,
                )
                results[session.session_id] = outcome
                if obs is not None:
                    obs.registry.inc("serving.ticks_served_total", lane=lane_key)
                self._health_after_step(session, outcome)

                for name, adapter in session.detectors.items():
                    detector_tick, view = adapter.prepare(sample)
                    if view is None:
                        outcome.verdicts[name] = StreamVerdict(tick=detector_tick, warming=True)
                        if obs is not None:
                            obs.registry.inc("serving.detector_warming_total", detector=name)
                        continue
                    # Batches are scoped to the lane: one query per distinct
                    # detector per lane, NOT per detector fleet-wide.  BLAS
                    # rounds per batch shape, so cross-lane batching would
                    # make a session's scores depend on which *other* lanes
                    # happen to share its detector (a composition dependence
                    # the sharded fabric's bitwise parity gate would reject —
                    # lanes are the atomic placement unit).
                    group_key = (
                        lane_key,
                        id(adapter.detector),
                        view.shape[1:],
                        adapter.incremental,
                    )
                    group = pending_views.setdefault(
                        group_key,
                        {
                            "detector": adapter.detector,
                            "incremental": adapter.incremental,
                            "views": [],
                            "targets": [],
                        },
                    )
                    group["views"].append(view)
                    group["targets"].append((outcome, name, adapter, detector_tick, session))
            if obs is not None:
                obs.registry.observe("serving.lane_step_batch", len(items), lane=lane_key)
                obs.emit_span(
                    "lane_step",
                    lane_started,
                    tick=now,
                    lane=lane_key,
                    sessions=tuple(session.session_id for session in lane_sessions),
                    batch=len(items),
                )

        # One batched query per lane per distinct detector object and view
        # shape; incremental adapters additionally thread their per-stream
        # states through the detector's batched incremental call.  When one
        # *phased* incremental detector (MAD-GAN) backs several groups this
        # tick, its groups run warm phases eagerly here but pool their owed
        # cold inversions for one merged batch below (coalesce_cold_batches).
        coalescible: set = set()
        if self.coalesce_cold_batches:
            phased_counts: Dict[int, int] = {}
            for group in pending_views.values():
                if group["incremental"] and hasattr(
                    group["detector"], "begin_scores_incremental"
                ):
                    key = id(group["detector"])
                    phased_counts[key] = phased_counts.get(key, 0) + 1
            coalescible = {key for key, count in phased_counts.items() if count >= 2}
        # id(detector) -> [(group_key, group, plan, started, wants_scores)],
        # in tick iteration order (the order the begin phases drew their
        # cold-start latents — splitting the merged inversion back follows it).
        deferred_plans: Dict[int, List] = {}

        for group_key, group in pending_views.items():
            group_started = None
            if obs is not None:
                group_started = perf_counter()
                obs.registry.inc(
                    "serving.detector_queries_total",
                    lane=group_key[0],
                    incremental="yes" if group["incremental"] else "no",
                )
                obs.registry.observe(
                    "serving.detector_batch", len(group["targets"]), lane=group_key[0]
                )
            stacked_views = np.concatenate(group["views"])
            wants_scores = any(adapter.include_scores for _, _, adapter, _, _ in group["targets"])
            try:
                if group["incremental"]:
                    states = [adapter.inversion_state for _, _, adapter, _, _ in group["targets"]]
                    if id(group["detector"]) in coalescible:
                        plan = group["detector"].begin_scores_incremental(
                            stacked_views, states
                        )
                        deferred_plans.setdefault(id(group["detector"]), []).append(
                            (group_key, group, plan, group_started, wants_scores)
                        )
                        continue
                    flags, scores = group["detector"].predict_incremental(
                        stacked_views, states, include_scores=True
                    )
                    if not wants_scores:
                        scores = None
                else:
                    flags = group["detector"].predict(stacked_views)
                    scores = group["detector"].scores(stacked_views) if wants_scores else None
            except Exception as exc:
                self._detector_failure(group["targets"], exc)
                continue
            self._apply_group_verdicts(group_key, group, flags, scores, group_started, now)

        for entries in deferred_plans.values():
            detector = entries[0][1]["detector"]
            owed = [entry for entry in entries if entry[2].rerun_cold]
            cold_errors = cold_latents = None
            if owed:
                try:
                    cold_errors, cold_latents = detector.invert_cold(
                        np.concatenate(
                            [plan.scaled[plan.rerun_cold] for _, _, plan, _, _ in owed]
                        ),
                        np.concatenate([plan.cold_initial for _, _, plan, _, _ in owed]),
                    )
                except Exception as exc:
                    for _, group, _, _, _ in entries:
                        self._detector_failure(group["targets"], exc)
                    continue
                if obs is not None and len(owed) >= 2:
                    obs.registry.inc("serving.cold_coalesced_total")
                    obs.registry.observe(
                        "serving.cold_coalesce_windows", len(cold_errors)
                    )
            offset = 0
            for group_key, group, plan, group_started, wants_scores in entries:
                n_cold = len(plan.rerun_cold)
                slice_errors = slice_latents = None
                if n_cold:
                    slice_errors = cold_errors[offset : offset + n_cold]
                    slice_latents = cold_latents[offset : offset + n_cold]
                    offset += n_cold
                try:
                    flags, scores = detector.finish_predict_incremental(
                        plan, slice_errors, slice_latents, include_scores=True
                    )
                except Exception as exc:
                    self._detector_failure(group["targets"], exc)
                    continue
                if not wants_scores:
                    scores = None
                self._apply_group_verdicts(
                    group_key, group, flags, scores, group_started, now
                )
        if obs is not None:
            self._finish_tick_obs(tick_started, events_mark, results)
        return results

    def _apply_group_verdicts(
        self, group_key, group, flags, scores, group_started, now
    ) -> None:
        """Distribute one detector group's flags/scores to its sessions.

        Shared by the eager per-group path and the coalesced cold-batch path
        — verdict construction, per-verdict counters, inversion-activity
        draining, and the ``detector_batch`` span are identical either way.
        """
        obs = self.obs
        for index, (outcome, name, adapter, detector_tick, _) in enumerate(group["targets"]):
            score = (
                float(scores[index])
                if scores is not None and adapter.include_scores
                else None
            )
            verdict = StreamVerdict(
                tick=detector_tick,
                warming=False,
                flagged=bool(flags[index]),
                score=score,
                degraded=adapter.watchdog_tripped(),
            )
            outcome.verdicts[name] = verdict
            if obs is not None:
                obs.registry.inc(
                    "serving.detector_verdicts_total",
                    detector=name,
                    flagged="yes" if verdict.flagged else "no",
                )
                if verdict.degraded:
                    obs.registry.inc("serving.watchdog_degraded_total", detector=name)
        if obs is not None:
            if group["incremental"]:
                for _, name, adapter, _, _ in group["targets"]:
                    self._observe_inversion(name, adapter)
            obs.emit_span(
                "detector_batch",
                group_started,
                tick=now,
                lane=group_key[0],
                sessions=tuple(
                    session.session_id for _, _, _, _, session in group["targets"]
                ),
                batch=len(group["targets"]),
                incremental=group["incremental"],
            )

    def _observe_inversion(self, name: str, adapter) -> None:
        """Fold one incremental adapter's inversion-activity deltas in."""
        counts = adapter.drain_inversion_counts()
        if counts is None:
            return
        scored, fallbacks, deferred = counts
        registry = self.obs.registry
        if scored:
            registry.inc("detector.inversion_ticks_total", scored, detector=name)
        if fallbacks:
            registry.inc("detector.inversion_fallbacks_total", fallbacks, detector=name)
        if deferred:
            registry.inc("detector.inversion_deferred_total", deferred, detector=name)

    def _finish_tick_obs(self, tick_started: float, events_mark: int, results) -> None:
        """Emit the tick's trailing ``health`` and ``merge`` spans."""
        obs = self.obs
        transitions = sum(
            1
            for event in obs.events[events_mark:]
            if event.kind == "health_transition"
        )
        # The health stage is interleaved with lane/detector work, so its
        # span is an aggregate marker (seconds=None) carrying the number of
        # state transitions this tick caused; the merge span's seconds are
        # the whole-tick envelope.
        obs.emit_span("health", None, tick=self._now, transitions=transitions)
        served = sum(1 for outcome in results.values() if not outcome.dropped)
        obs.emit_span(
            "merge",
            tick_started,
            tick=self._now,
            results=len(results),
            served=served,
            dropped=len(results) - served,
        )

    def _detector_failure(self, targets, exc: BaseException) -> None:
        """One batched detector query raised: degrade its verdicts or re-raise."""
        if self.health is None:
            sessions = [session for _, _, _, _, session in targets]
            raise SchedulerTickError("detector query", sessions, exc) from exc
        session_ids = [session.session_id for _, _, _, _, session in targets]
        logger.warning(
            "detector query degraded for session(s) %s at delivered_at=%s: %s: %s",
            session_ids,
            self._now,
            type(exc).__name__,
            exc,
        )
        obs = self.obs
        if obs is not None:
            obs.event(
                "detector_failure",
                sessions=session_ids,
                delivered_at=self._now,
                error=f"{type(exc).__name__}: {exc}",
            )
        for outcome, name, _, detector_tick, session in targets:
            if obs is not None:
                obs.registry.inc("serving.detector_failures_total", detector=name)
            outcome.verdicts[name] = StreamVerdict(
                tick=detector_tick, warming=False, flagged=None, degraded=True
            )
            outcome.error = f"detector {name!r}: {type(exc).__name__}: {exc}"
            session.health.record_error(
                outcome.tick, f"detector {name!r} raised: {exc}", delivered_at=self._now
            )
            if session.health.blocked:
                self._quarantine_session(session)

    def _tick_single(
        self,
        session: PatientSession,
        sample: np.ndarray,
        ingress_tag: Optional[str] = None,
    ) -> Dict[str, SessionTick]:
        """One-session tick minus the batching scaffolding (same arithmetic).

        Emits the same per-session metric series as the batched path (a
        one-session lane step is a batch of one), so a session's metrics are
        identical whichever path its tick happens to take — the invariant
        the sharded metric-parity gate relies on.
        """
        obs = self.obs
        lane_key = session._lane_key
        lane = self._lanes[lane_key]
        lane_started = perf_counter() if obs is not None else 0.0
        try:
            prediction = lane.predictor.step_one(sample, lane.state, session._slot)
        except Exception as exc:
            results: Dict[str, SessionTick] = {}
            self._lane_failure([session], sample[np.newaxis], exc, results)
            return results

        tick_index = session.ticks
        session.ticks += 1
        session._push_raw(sample)
        if prediction is not None and np.isnan(prediction):
            # Match the batched path: a non-finite prediction is reported as
            # None (and flagged by the health machinery), never as NaN.
            prediction = None
        if prediction is not None:
            session.last_prediction = prediction
        outcome = SessionTick(
            session_id=session.session_id,
            tick=tick_index,
            sample=sample.copy(),
            prediction=prediction,
            ingress=ingress_tag,
        )
        if obs is not None:
            obs.registry.inc("serving.ticks_served_total", lane=lane_key)
            obs.registry.observe("serving.lane_step_batch", 1, lane=lane_key)
            obs.emit_span(
                "lane_step",
                lane_started,
                tick=self._now,
                lane=lane_key,
                sessions=(session.session_id,),
                batch=1,
            )
        self._health_after_step(session, outcome)
        for name, adapter in session.detectors.items():
            # With a single stream there is nothing to group: the adapter's
            # own single-stream update IS the batched path's arithmetic.
            query_started = perf_counter() if obs is not None else 0.0
            try:
                verdict = adapter.update(sample)
            except Exception as exc:
                if obs is not None:
                    # The batched path counts a query per formed group; a
                    # failing update had formed its one-session group.
                    obs.registry.inc(
                        "serving.detector_queries_total",
                        lane=lane_key,
                        incremental="yes" if adapter.incremental else "no",
                    )
                    obs.registry.observe("serving.detector_batch", 1, lane=lane_key)
                self._detector_failure(
                    [(outcome, name, adapter, session.ticks - 1, session)], exc
                )
                continue
            outcome.verdicts[name] = verdict
            if obs is not None:
                if verdict.warming:
                    obs.registry.inc("serving.detector_warming_total", detector=name)
                    continue
                obs.registry.inc(
                    "serving.detector_queries_total",
                    lane=lane_key,
                    incremental="yes" if adapter.incremental else "no",
                )
                obs.registry.observe("serving.detector_batch", 1, lane=lane_key)
                obs.registry.inc(
                    "serving.detector_verdicts_total",
                    detector=name,
                    flagged="yes" if verdict.flagged else "no",
                )
                if verdict.degraded:
                    obs.registry.inc("serving.watchdog_degraded_total", detector=name)
                if adapter.incremental:
                    self._observe_inversion(name, adapter)
                obs.emit_span(
                    "detector_batch",
                    query_started,
                    tick=self._now,
                    lane=lane_key,
                    sessions=(session.session_id,),
                    batch=1,
                    incremental=adapter.incremental,
                )
        return {session.session_id: outcome}
