"""Session batching: one stacked incremental model step per tick per model.

The scheduler is the serving-side twin of the attack campaign's cohort
batching: instead of merging the windows of patients sharing a model into one
lockstep *search*, it merges the live streams of sessions sharing a model into
one stacked incremental *step*.  Sessions are grouped into **lanes** by
:meth:`GlucosePredictor.state_hash` — weights + scaler, not object identity —
so separately loaded copies of the same checkpoint share a lane.  Each lane
holds one stacked :class:`~repro.nn.recurrent.BiLSTMStreamState` with a slot
per session; a tick gathers whichever sessions received a sample, advances
their slots with one ``step_stream`` call, and batches all detector queries
that share an underlying detector object into one ``predict`` per detector.

Capacity is dynamic: lanes double their slot arrays when full and recycle the
slots of closed sessions, so thousands of sessions can come and go without
rebuilding any state.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.glucose.predictor import GlucosePredictor
from repro.detectors.streaming import StreamVerdict
from repro.serving.session import PatientSession, SessionTick

#: Initial number of slots a fresh lane allocates.
_INITIAL_LANE_CAPACITY = 4


class _Lane:
    """All sessions served by one model: a stacked stream state plus slots."""

    __slots__ = ("predictor", "state", "sessions", "_free")

    def __init__(self, predictor: GlucosePredictor, capacity: int = _INITIAL_LANE_CAPACITY):
        self.predictor = predictor
        self.state = predictor.stream_state(capacity)
        self.sessions: Dict[int, PatientSession] = {}
        self._free: List[int] = list(range(capacity))

    def allocate(self, session: PatientSession) -> int:
        if not self._free:
            old = self.state.n_streams
            self.state.grow(max(2 * old, _INITIAL_LANE_CAPACITY))
            self._free = list(range(old, self.state.n_streams))
        slot = self._free.pop(0)
        self.sessions[slot] = session
        return slot

    def release(self, slot: int) -> None:
        self.sessions.pop(slot, None)
        self.state.reset_slots(np.array([slot]))
        bisect.insort(self._free, slot)

    def __len__(self) -> int:
        return len(self.sessions)


class StreamScheduler:
    """Coalesce concurrent patient streams into per-model batched ticks.

    Parameters
    ----------
    use_single_fast_path:
        When True (the default) a tick that delivers to exactly one session
        bypasses the lane stacking and detector-grouping bookkeeping and
        runs a slim single-stream path (:meth:`GlucosePredictor.step_one`).
        The arithmetic is identical to the batched path on a one-row batch,
        so predictions and verdicts are bitwise-equal
        (``tests/test_serving.py`` pins this); only the per-tick Python
        overhead differs.  Set False to force every tick through the
        batched path (benchmark/parity use).
    """

    def __init__(self, use_single_fast_path: bool = True):
        self.use_single_fast_path = bool(use_single_fast_path)
        self._lanes: Dict[str, _Lane] = {}
        self._sessions: Dict[str, PatientSession] = {}

    # ---------------------------------------------------------------- sessions
    def open_session(
        self,
        patient_label: str,
        predictor: GlucosePredictor,
        detectors=None,
        session_id: Optional[str] = None,
    ) -> PatientSession:
        """Register a new live stream served by ``predictor``.

        Sessions landing on models with equal :meth:`GlucosePredictor.state_hash`
        share a lane (and therefore a stacked model step) even when the
        predictor objects are distinct.
        """
        session_id = str(session_id if session_id is not None else patient_label)
        if session_id in self._sessions:
            raise ValueError(f"session id {session_id!r} already exists")
        lane_key = predictor.state_hash()
        lane = self._lanes.get(lane_key)
        if lane is None:
            lane = self._lanes[lane_key] = _Lane(predictor)
        session = PatientSession(session_id, patient_label, predictor, detectors=detectors)
        slot = lane.allocate(session)
        session._attach(self, lane_key, slot)
        self._sessions[session_id] = session
        return session

    def close_session(self, session_id: str) -> None:
        """Tear a session down and recycle its lane slot."""
        session = self._sessions.pop(str(session_id))
        lane = self._lanes[session._lane_key]
        lane.release(session._slot)
        if not lane.sessions:
            del self._lanes[session._lane_key]
        session._attach(None, None, None)

    @property
    def n_sessions(self) -> int:
        return len(self._sessions)

    @property
    def n_lanes(self) -> int:
        """Number of distinct models currently being served."""
        return len(self._lanes)

    def session(self, session_id: str) -> PatientSession:
        return self._sessions[str(session_id)]

    # ----------------------------------------------------------------- ticking
    def tick(self, samples: Mapping[str, np.ndarray]) -> Dict[str, SessionTick]:
        """Deliver one raw sample to each named session; return their outcomes.

        Parameters
        ----------
        samples:
            ``{session_id: (n_features,) raw sample}`` — **sample** units
            (one unscaled measurement per stream), not windows.  Sessions
            not named are untouched (a device that missed a transmission
            slot); their rings simply don't advance.

        Returns
        -------
        ``{session_id: SessionTick}`` for exactly the named sessions.  A
        tick's ``prediction`` is None while that stream's window is warming
        up (its first ``history - 1`` delivered samples), then a float in
        mg/dL; window-unit detector verdicts carry ``warming=True`` over the
        same span.

        All model work is one ``step_stream`` call per lane; all detector
        work is one ``predict`` call per distinct underlying detector object
        (incremental adapters instead share one ``predict_incremental``
        call, which also advances their per-stream states exactly once).  A
        single-session tick takes the slim fast path instead — see
        ``use_single_fast_path``.
        """
        if self.use_single_fast_path and len(samples) == 1:
            ((session_id, sample),) = samples.items()
            return self._tick_single(session_id, sample)
        per_lane: Dict[str, List[Tuple[PatientSession, np.ndarray]]] = {}
        for session_id, sample in samples.items():
            session = self._sessions[str(session_id)]
            sample = np.asarray(sample, dtype=np.float64)
            if sample.shape != (session.predictor.n_features,):
                raise ValueError(
                    f"sample for session {session_id!r} must have shape "
                    f"({session.predictor.n_features},), got {sample.shape}"
                )
            per_lane.setdefault(session._lane_key, []).append((session, sample))

        results: Dict[str, SessionTick] = {}
        # (detector object id, view shape) -> stacked views + where they go
        pending_views: Dict[tuple, dict] = {}

        for lane_key, items in per_lane.items():
            lane = self._lanes[lane_key]
            lane_sessions = [session for session, _ in items]
            stacked = np.stack([sample for _, sample in items])
            rows = np.array([session._slot for session in lane_sessions])
            predictions = lane.predictor.step_stream(stacked, lane.state, rows=rows)

            for session, sample, prediction in zip(lane_sessions, stacked, predictions):
                tick_index = session.ticks
                session.ticks += 1
                session._push_raw(sample)
                value = None if np.isnan(prediction) else float(prediction)
                session.last_prediction = value if value is not None else session.last_prediction
                outcome = SessionTick(
                    session_id=session.session_id,
                    tick=tick_index,
                    sample=sample.copy(),
                    prediction=value,
                )
                results[session.session_id] = outcome

                for name, adapter in session.detectors.items():
                    detector_tick, view = adapter.prepare(sample)
                    if view is None:
                        outcome.verdicts[name] = StreamVerdict(tick=detector_tick, warming=True)
                        continue
                    group_key = (id(adapter.detector), view.shape[1:], adapter.incremental)
                    group = pending_views.setdefault(
                        group_key,
                        {
                            "detector": adapter.detector,
                            "incremental": adapter.incremental,
                            "views": [],
                            "targets": [],
                        },
                    )
                    group["views"].append(view)
                    group["targets"].append((outcome, name, adapter, detector_tick))

        # One batched query per distinct detector object and view shape;
        # incremental adapters additionally thread their per-stream states
        # through the detector's batched incremental call.
        for group in pending_views.values():
            stacked_views = np.concatenate(group["views"])
            wants_scores = any(adapter.include_scores for _, _, adapter, _ in group["targets"])
            if group["incremental"]:
                states = [adapter.inversion_state for _, _, adapter, _ in group["targets"]]
                flags, scores = group["detector"].predict_incremental(
                    stacked_views, states, include_scores=True
                )
                if not wants_scores:
                    scores = None
            else:
                flags = group["detector"].predict(stacked_views)
                scores = group["detector"].scores(stacked_views) if wants_scores else None
            for index, (outcome, name, adapter, detector_tick) in enumerate(group["targets"]):
                score = (
                    float(scores[index])
                    if scores is not None and adapter.include_scores
                    else None
                )
                outcome.verdicts[name] = StreamVerdict(
                    tick=detector_tick,
                    warming=False,
                    flagged=bool(flags[index]),
                    score=score,
                )
        return results

    def _tick_single(self, session_id: str, sample: np.ndarray) -> Dict[str, SessionTick]:
        """One-session tick minus the batching scaffolding (same arithmetic)."""
        session = self._sessions[str(session_id)]
        sample = np.asarray(sample, dtype=np.float64)
        if sample.shape != (session.predictor.n_features,):
            raise ValueError(
                f"sample for session {session_id!r} must have shape "
                f"({session.predictor.n_features},), got {sample.shape}"
            )
        lane = self._lanes[session._lane_key]
        prediction = lane.predictor.step_one(sample, lane.state, session._slot)

        tick_index = session.ticks
        session.ticks += 1
        session._push_raw(sample)
        if prediction is not None:
            session.last_prediction = prediction
        outcome = SessionTick(
            session_id=session.session_id,
            tick=tick_index,
            sample=sample.copy(),
            prediction=prediction,
        )
        for name, adapter in session.detectors.items():
            # With a single stream there is nothing to group: the adapter's
            # own single-stream update IS the batched path's arithmetic.
            outcome.verdicts[name] = adapter.update(sample)
        return {session.session_id: outcome}
