"""Streaming online-inference subsystem.

The paper's threat model is online — a compromised CGM→pump link tampers with
readings as they stream in, and detectors must flag the trace in real time —
while the rest of this repository evaluates offline on pre-materialized
windows.  This package is the serving layer that closes the gap:

``session``
    :class:`PatientSession` — one live patient stream with ring-buffered
    history and a slot in a shared recurrent state; O(1) memory per tick.
``scheduler``
    :class:`StreamScheduler` — coalesces every session sharing a model
    (grouped by weight+scaler hash, not object identity) into ONE stacked
    incremental step per tick; scales to thousands of concurrent sessions.
``attacker``
    :class:`OnlineAttacker` — a mid-stream man-in-the-middle that runs the
    URET evasion engine on the live context window each tick and tampers the
    sample in flight.
``replay``
    :class:`StreamReplayer` — drives sessions from physiology-simulator
    traces, with optional attack episodes and streaming detectors, and
    reports the paper's trace-level TP/FN breakdown plus per-episode
    detection latency.
``faults``
    :class:`FaultInjector` — seeded, reproducible *benign* sensor faults
    (bias, stuck-at, spikes, drift, dropout bursts, malformed samples) a
    detector must NOT confuse with tampering; composes with device clocks
    and session churn.
``health``
    Graceful degradation: ingress validation, the per-session
    :class:`SessionHealth` state machine (healthy → degraded → quarantined
    → recovered), and checkpoint validation gates.  See
    ``docs/robustness.md``.
``shard``
    :class:`ShardedScheduler` — the multiprocess scale-out facade: lanes
    partitioned across worker processes behind the same scheduler API,
    with deterministic session-id-ordered merges and bitwise parity to the
    single-process path (``scripts/check_parity.py`` gates it).  See
    ``docs/serving.md``.
``recovery``
    Crash recovery: :meth:`StreamScheduler.snapshot` / ``restore`` capture
    and rebuild the complete deterministic scheduler state (resume is
    **bitwise** vs the uninterrupted run), :class:`SchedulerCheckpointer`
    persists versioned + checksummed snapshot files, and
    :class:`SupervisorConfig` arms the shard fabric's self-healing
    supervisor (respawn + snapshot restore + journal replay).  See
    ``docs/recovery.md``.

Every streamed prediction is pinned to the offline fast path
(:meth:`GlucosePredictor.predict`) within 1e-10, and streaming detector
verdicts are identical to the offline ``predict`` on the same windows; the
pins live in ``tests/test_serving.py`` and ``scripts/check_parity.py``.
"""

from repro.serving.session import PatientSession, SessionTick
from repro.serving.scheduler import SchedulerTickError, StreamScheduler
from repro.serving.attacker import AttackEpisode, OnlineAttacker, TamperRecord
from repro.serving.faults import (
    DeviceFaultPlan,
    FaultEvent,
    FaultInjector,
    FaultKind,
    SensorFaultConfig,
)
from repro.serving.health import (
    CheckpointError,
    HealthConfig,
    HealthEvent,
    HealthState,
    IngressConfig,
    IngressPolicy,
    SessionHealth,
    validate_checkpoint,
)
from repro.serving.replay import (
    DeviceClockConfig,
    SessionChurnConfig,
    EpisodeOutcome,
    ReplayReport,
    ReplaySessionTrace,
    StreamReplayer,
)
from repro.serving.recovery import (
    SchedulerCheckpointer,
    SchedulerSnapshot,
    SnapshotError,
)
from repro.serving.shard import (
    ShardDeadError,
    ShardSessionHandle,
    ShardWorkerError,
    ShardedScheduler,
    SupervisorConfig,
)

__all__ = [
    "PatientSession",
    "SessionTick",
    "StreamScheduler",
    "SchedulerTickError",
    "AttackEpisode",
    "OnlineAttacker",
    "TamperRecord",
    "DeviceFaultPlan",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "SensorFaultConfig",
    "CheckpointError",
    "HealthConfig",
    "HealthEvent",
    "HealthState",
    "IngressConfig",
    "IngressPolicy",
    "SessionHealth",
    "validate_checkpoint",
    "DeviceClockConfig",
    "SessionChurnConfig",
    "EpisodeOutcome",
    "ReplayReport",
    "ReplaySessionTrace",
    "StreamReplayer",
    "SchedulerCheckpointer",
    "SchedulerSnapshot",
    "SnapshotError",
    "ShardDeadError",
    "ShardSessionHandle",
    "ShardWorkerError",
    "ShardedScheduler",
    "SupervisorConfig",
]
