"""Replay physiology-simulator traces through the live serving stack.

The :class:`StreamReplayer` is the bridge between the repository's offline
world (simulated cohorts, fitted forecasters, fitted detectors) and the
serving subsystem: it opens one session per patient record, feeds the trace
one tick at a time through the :class:`StreamScheduler`, lets an optional
:class:`OnlineAttacker` tamper samples in flight, and collects everything
needed for the paper's *online* evaluation — the per-measurement TP/FN
breakdown of Figure 5, but measured live, plus the quantity only a streaming
evaluation can produce: **detection latency**, the number of ticks between an
attack episode starting and a detector first flagging the stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.cohort import CGM_COLUMN, Cohort
from repro.utils.rng import SeedLike, as_random_state
from repro.detectors.base import AnomalyDetector
from repro.detectors.streaming import StreamingDetector
from repro.eval.experiments import TraceDetectionSample
from repro.eval.metrics import ConfusionMatrix, confusion_matrix
from repro.glucose.models import GlucoseModelZoo
from repro.glucose.states import Scenario, scenario_for_samples
from repro.serving.attacker import AttackEpisode, OnlineAttacker
from repro.serving.faults import FaultInjector, SensorFaultConfig
from repro.serving.scheduler import StreamScheduler
from repro.serving.session import SessionTick


@dataclass(frozen=True)
class DeviceClockConfig:
    """Per-device transmission clock model for :class:`StreamReplayer`.

    A real CGM fleet does not tick in lockstep: each sensor's transmission
    period drifts a little from nominal, individual transmissions jitter,
    and some are dropped outright (radio loss).  This config drives a
    per-device delivery schedule over the replayer's global clock, so the
    scheduler's missed-tick path (sessions absent from a ``tick`` mapping),
    slot recycling, and detection-latency accounting are exercised the way
    production traffic would.

    Parameters
    ----------
    drift:
        Each device draws a fixed period of ``1 + U(-drift, drift)`` global
        ticks per sample.  A slow device (period > 1) progressively falls
        behind the global clock and misses transmission slots.
    jitter:
        Additional per-delivery interval noise ``U(-jitter, jitter)``
        (ticks).  Intervals are clamped to at least 0.25 ticks.
    dropout:
        Probability that a due transmission is lost; the device retries on
        the next global tick (the sample is delayed, never skipped — CGM
        samples are a sequence, not a best-effort stream).
    seed:
        Seed for the per-device period draws and per-delivery noise.

    ``DeviceClockConfig()`` (all zeros) reproduces the lockstep replay
    exactly; it is also what ``StreamReplayer(clocks=None)`` uses.
    """

    drift: float = 0.0
    jitter: float = 0.0
    dropout: float = 0.0
    seed: SeedLike = 0

    def __post_init__(self):
        if not 0.0 <= self.drift < 1.0:
            raise ValueError("drift must be in [0, 1)")
        if self.jitter < 0.0:
            raise ValueError("jitter must be non-negative")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")


@dataclass(frozen=True)
class SessionChurnConfig:
    """Session lifecycle model: devices joining and leaving mid-replay.

    The device clocks (:class:`DeviceClockConfig`) perturb *when* an open
    session transmits; this config perturbs *whether the session exists* —
    the other half of production traffic.  Devices come online staggered,
    disconnect mid-trace (their session closes, the scheduler recycles its
    lane slot and any later joiner may claim it), reconnect as a fresh
    session that warms up from an empty ring, and tear down as soon as their
    trace drains.  The replay still guarantees every device delivers its
    full trace — samples are a sequence, and a disconnected device resumes
    where it left off.

    Parameters
    ----------
    join_stagger:
        Device ``i`` opens its first session at global tick
        ``i * join_stagger`` (0 = everyone joins up front, the previous
        behavior).
    disconnect_every:
        After this many delivered samples a device disconnects: its session
        closes mid-replay and the remaining trace is delivered by a new
        session (id ``label#1``, ``label#2``, ...) opened
        ``reconnect_after`` ticks later.  None disables mid-trace churn.
    reconnect_after:
        Global ticks a disconnected device stays offline before its next
        segment joins.
    close_on_drain:
        Close a session the moment its trace drains instead of at replay
        end, so its lane slot is recycled while other devices still stream
        (slot-recycling under load; the drained trace is unaffected).

    Note on attackers: :class:`OnlineAttacker` episodes are keyed by
    *session id* and expressed in session-local ticks, so under churn an
    episode targets one specific segment (``label``, ``label#1``, ...) and
    its ``start`` counts from that segment's first delivered sample.
    Episodes pointing past a segment's end are never injected and are
    excluded from detection metrics.
    """

    join_stagger: int = 0
    disconnect_every: Optional[int] = None
    reconnect_after: int = 1
    close_on_drain: bool = True

    def __post_init__(self):
        if self.join_stagger < 0:
            raise ValueError("join_stagger must be non-negative")
        if self.disconnect_every is not None and self.disconnect_every <= 0:
            raise ValueError("disconnect_every must be positive or None")
        if self.reconnect_after < 0:
            raise ValueError("reconnect_after must be non-negative")


@dataclass
class ReplaySessionTrace:
    """Everything one session produced during a replay.

    ``ticks`` are indexed in *session-tick* order (one entry per delivered
    sample); ``delivered_at[i]`` is the global replay tick at which session
    tick ``i`` was delivered (equal to ``i`` when the replay runs without
    device clocks).
    """

    session_id: str
    patient_label: str
    ticks: List[SessionTick] = field(default_factory=list)
    scenarios: List[Scenario] = field(default_factory=list)
    delivered_at: List[int] = field(default_factory=list)
    #: The session's health state transitions (empty without a
    #: health-enabled scheduler); captured when the session closes.
    health_timeline: List = field(default_factory=list)

    @property
    def n_ticks(self) -> int:
        return len(self.ticks)

    @property
    def faulted_ticks(self) -> List[int]:
        """Session ticks carrying a benign sensor fault."""
        return [outcome.tick for outcome in self.ticks if outcome.fault]

    @property
    def dropped_ticks(self) -> List[int]:
        """Session ticks refused by ingress validation or quarantine."""
        return [outcome.tick for outcome in self.ticks if outcome.dropped]

    @property
    def missed_slots(self) -> int:
        """Global ticks within this device's delivery span with no delivery.

        Zero for a lockstep replay; with device clocks it counts how often
        the scheduler advanced other sessions while this one's ring stood
        still (the missed-tick path).
        """
        if len(self.delivered_at) < 2:
            return 0
        span = self.delivered_at[-1] - self.delivered_at[0] + 1
        return int(span - len(self.delivered_at))

    @property
    def attacked_ticks(self) -> List[int]:
        return [outcome.tick for outcome in self.ticks if outcome.attacked]

    def predictions(self) -> np.ndarray:
        """Per-tick predictions (NaN while warming)."""
        return np.array(
            [np.nan if outcome.prediction is None else outcome.prediction for outcome in self.ticks]
        )

    def delivered_cgm(self) -> np.ndarray:
        return np.array([outcome.sample[CGM_COLUMN] for outcome in self.ticks])


@dataclass
class EpisodeOutcome:
    """Did a detector catch one attack episode, and how fast?"""

    session_id: str
    detector: str
    episode: AttackEpisode
    detected: bool
    first_flag_tick: Optional[int] = None

    @property
    def latency_ticks(self) -> Optional[float]:
        """Ticks from episode start to the first flag (None if undetected)."""
        if self.first_flag_tick is None:
            return None
        return float(self.first_flag_tick - self.episode.start)


@dataclass
class ReplayReport:
    """Aggregate result of one replay run."""

    sessions: Dict[str, ReplaySessionTrace] = field(default_factory=dict)
    episodes: List[EpisodeOutcome] = field(default_factory=list)
    detector_names: List[str] = field(default_factory=list)

    # -------------------------------------------------------------- detection
    def _iter_verdicts(self, detector: str, session_id: Optional[str] = None):
        traces = (
            self.sessions.values()
            if session_id is None
            else [self.sessions[session_id]]
        )
        for trace in traces:
            for outcome in trace.ticks:
                verdict = outcome.verdicts.get(detector)
                if verdict is None or verdict.warming:
                    continue
                yield trace, outcome, verdict

    def confusion(self, detector: str) -> ConfusionMatrix:
        """Tick-level confusion of one detector (tampered = positive class)."""
        truth: List[int] = []
        flags: List[int] = []
        for _, outcome, verdict in self._iter_verdicts(detector):
            truth.append(int(outcome.attacked))
            flags.append(int(verdict.flagged))
        return confusion_matrix(truth, flags)

    def trace_samples(
        self, detector: str, session_id: str
    ) -> List[TraceDetectionSample]:
        """The paper's Figure 5 per-measurement view, from the live replay."""
        trace = self.sessions[session_id]
        samples: List[TraceDetectionSample] = []
        for _, outcome, verdict in self._iter_verdicts(detector, session_id):
            samples.append(
                TraceDetectionSample(
                    patient_label=trace.patient_label,
                    target_index=outcome.tick,
                    scenario=trace.scenarios[outcome.tick],
                    cgm_value=float(outcome.sample[CGM_COLUMN]),
                    is_malicious=bool(outcome.attacked),
                    flagged=bool(verdict.flagged),
                )
            )
        return samples

    def trace_breakdown(self, detector: str) -> Dict[str, Dict[str, int]]:
        """Per-session true-positive / false-negative counts on tampered ticks."""
        breakdown: Dict[str, Dict[str, int]] = {}
        for trace, outcome, verdict in self._iter_verdicts(detector):
            counts = breakdown.setdefault(
                trace.session_id, {"true_positives": 0, "false_negatives": 0}
            )
            if not outcome.attacked:
                continue
            if verdict.flagged:
                counts["true_positives"] += 1
            else:
                counts["false_negatives"] += 1
        return breakdown

    # ------------------------------------------------------------------- churn
    def segments_for(self, patient_label: str) -> List["ReplaySessionTrace"]:
        """Every session segment one device produced, in creation order.

        Without churn this is the device's single session; with
        :class:`SessionChurnConfig` disconnects each reconnection opened a
        fresh session (``label``, ``label#1``, ``label#2``, ...) and the
        device's trace is the concatenation of its segments' ticks.
        """
        return [
            trace
            for trace in self.sessions.values()
            if trace.patient_label == patient_label
        ]

    def delivered_ticks(self, patient_label: str) -> int:
        """Total samples one device delivered across all its session segments."""
        return sum(trace.n_ticks for trace in self.segments_for(patient_label))

    # ---------------------------------------------------------------- latency
    def episode_outcomes(self, detector: str) -> List[EpisodeOutcome]:
        return [outcome for outcome in self.episodes if outcome.detector == detector]

    def mean_detection_latency(self, detector: str) -> float:
        """Mean ticks-to-first-flag over the *detected* episodes (NaN if none)."""
        latencies = [
            outcome.latency_ticks
            for outcome in self.episode_outcomes(detector)
            if outcome.latency_ticks is not None
        ]
        return float(np.mean(latencies)) if latencies else float("nan")

    def detection_rate(self, detector: str) -> float:
        """Fraction of attack episodes the detector flagged at least once."""
        outcomes = self.episode_outcomes(detector)
        if not outcomes:
            return float("nan")
        return float(np.mean([outcome.detected for outcome in outcomes]))

    # ------------------------------------------------------------- robustness
    def benign_false_alarms(self, detector: str, faulted_only: bool = False) -> Tuple[int, int]:
        """``(false alarms, benign ticks scored)`` for one detector.

        ``faulted_only`` restricts the count to benign ticks carrying a
        sensor fault — the ticks a fault-confused detector would flag.  The
        paper's false-alarm cost is the rate ``false alarms / benign ticks``.
        """
        alarms = 0
        scored = 0
        for _, outcome, verdict in self._iter_verdicts(detector):
            if outcome.attacked:
                continue
            if faulted_only and not outcome.fault:
                continue
            scored += 1
            if verdict.flagged:
                alarms += 1
        return alarms, scored

    def health_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-session counts of dropped/faulted/errored ticks and quarantines."""
        summary: Dict[str, Dict[str, int]] = {}
        for session_id, trace in self.sessions.items():
            # HealthState is a str-Enum, so this matches the enum member.
            quarantines = sum(
                1 for event in trace.health_timeline if event.state == "quarantined"
            )
            summary[session_id] = {
                "ticks": trace.n_ticks,
                "dropped": len(trace.dropped_ticks),
                "faulted": len(trace.faulted_ticks),
                "errors": sum(1 for outcome in trace.ticks if outcome.error),
                "quarantines": quarantines,
            }
        return summary

    def rollup(self, detector: str) -> Dict[str, float]:
        """One detector's chaos-harness roll-up: TP/FP, false-alarm cost, latency."""
        confusion = self.confusion(detector)
        alarms, benign = self.benign_false_alarms(detector)
        fault_alarms, faulted = self.benign_false_alarms(detector, faulted_only=True)
        return {
            "true_positives": float(confusion.true_positives),
            "false_positives": float(confusion.false_positives),
            "true_negatives": float(confusion.true_negatives),
            "false_negatives": float(confusion.false_negatives),
            "false_positive_rate": float(confusion.false_positive_rate),
            "false_alarm_rate_benign": alarms / benign if benign else 0.0,
            "false_alarm_rate_faulted": fault_alarms / faulted if faulted else 0.0,
            "detection_rate": self.detection_rate(detector),
            "mean_detection_latency": self.mean_detection_latency(detector),
        }


class StreamReplayer:
    """Drive live sessions from simulated patient traces.

    Parameters
    ----------
    zoo:
        Fitted model zoo; each patient streams through the model the
        deployment would use for them.
    detectors:
        ``{name: (fitted detector, unit)}`` monitors attached to every
        session.  The detector *objects* are shared across sessions (the
        scheduler batches their queries); the per-stream ring adapters are
        created per session.  Units follow
        :class:`repro.eval.experiments.DetectorSpec`.
    attacker:
        Optional :class:`OnlineAttacker` tampering samples in flight.
    scheduler:
        Bring-your-own scheduler (e.g. to co-serve other sessions, or a
        pre-configured :class:`~repro.serving.shard.ShardedScheduler` for
        health/ingress-enabled sharded replays); a fresh one is created per
        replay otherwise.
    n_shards:
        Convenience scale-out: when set (and no ``scheduler`` was given),
        each replay runs on its own :class:`~repro.serving.shard.ShardedScheduler`
        with this many worker processes, torn down when the replay returns.
        Replay results are bitwise-identical to the single-process path for
        deterministic detectors — ``scripts/check_parity.py`` gates it.
    clocks:
        Optional :class:`DeviceClockConfig` giving every device its own
        transmission clock (drift/jitter/dropout).  None replays all
        devices in lockstep on the global clock — one sample per device per
        tick, the previous behavior.
    churn:
        Optional :class:`SessionChurnConfig` modelling devices joining and
        leaving mid-replay (staggered joins, mid-trace disconnect/reconnect
        segments, close-on-drain).  Exercises the scheduler's slot
        recycling at scale; None keeps every session open for the whole
        replay, the previous behavior.  Every device still delivers its
        full trace (the drain guarantee; ``tests/test_serving.py`` pins it).
    faults:
        Optional :class:`~repro.serving.faults.SensorFaultConfig` (or a
        prebuilt :class:`~repro.serving.faults.FaultInjector`) corrupting
        each device's trace with seeded *benign* sensor faults — bias,
        stuck-at, spikes, drift, dropout delivery delays, malformed samples
        — **upstream of the attacker**.  The faulted sample is the benign
        truth for attack accounting (a glitchy sensor is not an attack), so
        benign faults inflate only the false-alarm side of the report.
        Fault plans are drawn per device label (independent of delivery
        order), so they compose with ``clocks`` and ``churn`` without
        changing which faulted value position ``p`` delivers.  None — or
        the zero config — replays bitwise-identical to no injector at all
        (``tests/test_serving_faults.py`` pins this).
    divergence_watchdog:
        Optional K forwarded to every session's
        :class:`~repro.detectors.streaming.StreamingDetector` adapters:
        incremental streams report ``degraded`` verdicts after K
        consecutive cold fallbacks.  None disables the watchdog.
    obs:
        Optional :class:`~repro.obs.Observer`.  Forwarded into the
        scheduler/fabric the replay creates (bring-your-own schedulers wire
        their own), so every tick records the serving-side series and spans;
        the replayer additionally stamps each ``scheduler.tick`` with the
        global replay tick (``now=``), counts applied benign faults by kind
        (``replay.faults_applied_total``), and — once episodes are scored —
        emits the replay-level verdict/episode/latency series
        ``scripts/obs_report.py`` renders into the chaos-harness rollup.
        None (the default) is bitwise inert.
    """

    def __init__(
        self,
        zoo: GlucoseModelZoo,
        detectors: Optional[Mapping[str, Tuple[AnomalyDetector, str]]] = None,
        attacker: Optional[OnlineAttacker] = None,
        scheduler: Optional[StreamScheduler] = None,
        clocks: Optional[DeviceClockConfig] = None,
        churn: Optional[SessionChurnConfig] = None,
        faults: Optional[SensorFaultConfig] = None,
        divergence_watchdog: Optional[int] = None,
        n_shards: Optional[int] = None,
        obs=None,
    ):
        if scheduler is not None and n_shards is not None:
            raise ValueError(
                "pass either a bring-your-own scheduler or n_shards, not both"
            )
        self.zoo = zoo
        self.detectors = dict(detectors or {})
        self.attacker = attacker
        self.scheduler = scheduler
        self.n_shards = n_shards
        self.obs = obs
        self.clocks = clocks
        self.churn = churn
        if faults is None or isinstance(faults, FaultInjector):
            self.faults = faults
        else:
            self.faults = FaultInjector(faults)
        self.divergence_watchdog = divergence_watchdog

    def replay(
        self,
        cohort: Cohort,
        split: str = "test",
        max_ticks: Optional[int] = None,
    ) -> ReplayReport:
        """Stream every patient's trace tick-by-tick and collect the report.

        ``max_ticks`` caps how many *samples* each device delivers (session
        ticks).  With device clocks the replay runs as many global ticks as
        the slowest device needs, bounded by a drift/jitter/dropout-derived
        horizon; with session churn the same drain guarantee holds across a
        device's disconnect/reconnect segments.
        """
        owned_fabric = None
        if self.scheduler is not None:
            scheduler = self.scheduler
        elif self.n_shards is not None:
            from repro.serving.shard import ShardedScheduler

            scheduler = owned_fabric = ShardedScheduler(
                n_shards=self.n_shards, obs=self.obs
            )
        else:
            scheduler = StreamScheduler(obs=self.obs)
        report = ReplayReport(detector_names=list(self.detectors))
        churn = self.churn
        injector = self.faults if self.faults is not None and self.faults.enabled else None

        traces: List[dict] = []
        try:
            for record in cohort:
                features = record.features(split)
                if max_ticks is not None:
                    features = features[:max_ticks]
                if len(features) == 0:
                    continue
                traces.append(
                    {
                        "label": record.label,
                        "features": features,
                        "scenarios": scenario_for_samples(features[:, 2]),
                        "session": None,
                        "segment": 0,
                        "segment_deliveries": 0,
                        "position": 0,
                        # First join: staggered when churn says so.
                        "join_time": (
                            len(traces) * churn.join_stagger if churn is not None else 0
                        ),
                        "next_time": 0.0,
                        "period": 1.0,
                        # Benign sensor faults: the device's materialized
                        # plan and its last transmitted (post-fault) CGM —
                        # the stuck-at hold value, persisted across churn
                        # segments (the *device* is stuck, not the session).
                        "fault_plan": (
                            injector.plan_for(record.label, len(features))
                            if injector is not None
                            else None
                        ),
                        "held_cgm": None,
                        "fault_delayed": None,
                    }
                )
            if not traces:
                return report

            clocks = self.clocks
            drift = clocks.drift if clocks is not None else 0.0
            jitter = clocks.jitter if clocks is not None else 0.0
            dropout = clocks.dropout if clocks is not None else 0.0
            rng = as_random_state(clocks.seed) if clocks is not None else None
            for trace in traces:
                trace["period"] = (
                    1.0 + float(rng.uniform(-drift, drift)) if drift else 1.0
                )

            def open_segment(trace: dict, global_tick: int) -> None:
                """Open the device's next session segment (fresh adapters/rings)."""
                label = trace["label"]
                segment = trace["segment"]
                session_id = label if segment == 0 else f"{label}#{segment}"
                adapters = {
                    name: StreamingDetector(
                        detector,
                        unit=unit,
                        history=self.zoo.dataset.history,
                        divergence_watchdog=self.divergence_watchdog,
                    )
                    for name, (detector, unit) in self.detectors.items()
                }
                session = scheduler.open_session(
                    label,
                    self.zoo.model_for(label),
                    detectors=adapters,
                    session_id=session_id,
                )
                trace["session"] = session
                trace["segment_deliveries"] = 0
                trace["next_time"] = float(global_tick)
                report.sessions[session_id] = ReplaySessionTrace(
                    session_id=session_id, patient_label=label
                )

            def capture_health(session) -> None:
                if session.health is not None:
                    report.sessions[session.session_id].health_timeline = list(
                        session.health.timeline
                    )

            def close_segment(trace: dict) -> None:
                capture_health(trace["session"])
                scheduler.close_session(trace["session"].session_id)
                trace["session"] = None

            n_longest = max(len(trace["features"]) for trace in traces)
            # Fault dropout bursts delay deliveries by a known, precomputed
            # number of global ticks; the worst single device extends every
            # cap exactly.
            max_fault_delay = max(
                (
                    trace["fault_plan"].total_delay()
                    for trace in traces
                    if trace["fault_plan"] is not None
                ),
                default=0,
            )
            # The replay runs until every device drains its trace.  The cap is
            # a safety valve only: four times the mean-based bound (per-sample
            # period + jitter, inflated by retried dropouts, plus join stagger
            # and reconnect downtime) — a replay that exceeds it raises
            # instead of silently reporting partial traces.
            if clocks is None and churn is None:
                safety_cap = n_longest + max_fault_delay
            else:
                bound = int(
                    np.ceil(
                        n_longest * (1.0 + drift + jitter) / max(1.0 - dropout, 0.05)
                    )
                )
                bound += max_fault_delay
                if churn is not None:
                    bound += (len(traces) - 1) * churn.join_stagger
                    if churn.disconnect_every is not None:
                        reconnects = n_longest // churn.disconnect_every + 1
                        bound += reconnects * (churn.reconnect_after + 1)
                safety_cap = 4 * (bound + 16)

            global_tick = -1
            while True:
                global_tick += 1
                live = [
                    trace
                    for trace in traces
                    if trace["position"] < len(trace["features"])
                ]
                if not live:
                    break
                if global_tick >= safety_cap:
                    undrained = ", ".join(
                        f"{trace['label']!r} at sample "
                        f"{trace['position']}/{len(trace['features'])}"
                        + (
                            f" (session {trace['session'].session_id!r}, "
                            f"tick {trace['session'].ticks})"
                            if trace["session"] is not None
                            else " (offline)"
                        )
                        for trace in live
                    )
                    raise RuntimeError(
                        f"replay exceeded its safety cap of {safety_cap} global "
                        f"ticks with devices [{undrained}] still undrained "
                        f"(drift={drift}, jitter={jitter}, dropout={dropout}, "
                        f"churn={churn})"
                    )
                for trace in live:
                    if trace["session"] is None and trace["join_time"] <= global_tick:
                        open_segment(trace, global_tick)
                due = [
                    trace
                    for trace in live
                    if trace["session"] is not None
                    and trace["next_time"] <= global_tick + 1e-9
                ]
                delivering = []
                for trace in due:
                    plan = trace["fault_plan"]
                    if plan is not None and trace["fault_delayed"] != trace["position"]:
                        delay = plan.delay_at(trace["position"])
                        if delay > 0:
                            # Dropout burst: the device goes dark for `delay`
                            # global ticks, then transmits this same sample
                            # (delayed, never skipped — like clock dropouts).
                            trace["fault_delayed"] = trace["position"]
                            trace["next_time"] = float(global_tick + delay)
                            continue
                    if dropout and float(rng.uniform(0.0, 1.0)) < dropout:
                        # Lost transmission: the sample is delayed one global
                        # tick, not skipped (CGM traces are a sequence).
                        trace["next_time"] = global_tick + 1.0
                        continue
                    delivering.append(trace)
                if not delivering:
                    continue

                # What the sensor transmitted this tick: the recorded sample,
                # corrupted by any active benign fault.  This is the benign
                # truth for attack accounting — the attacker sits downstream
                # on the CGM→pump link and tampers the (faulty) transmission.
                benign = {}
                fault_kinds = {}
                for trace in delivering:
                    session_id = trace["session"].session_id
                    sample = trace["features"][trace["position"]]
                    plan = trace["fault_plan"]
                    if plan is not None:
                        sample, kinds, trace["held_cgm"] = plan.apply(
                            trace["position"], sample, trace["held_cgm"]
                        )
                        if kinds:
                            fault_kinds[session_id] = tuple(
                                kind.value for kind in kinds
                            )
                            if self.obs is not None:
                                for kind in kinds:
                                    self.obs.registry.inc(
                                        "replay.faults_applied_total", kind=kind.value
                                    )
                    benign[session_id] = sample
                if self.attacker is not None:
                    delivered = self.attacker.intercept(
                        [
                            (
                                trace["session"],
                                benign[trace["session"].session_id],
                                trace["scenarios"][trace["position"]],
                            )
                            for trace in delivering
                        ]
                    )
                else:
                    delivered = benign
                outcomes = scheduler.tick(delivered, now=global_tick)
                for trace in delivering:
                    session_id = trace["session"].session_id
                    position = trace["position"]
                    outcome = outcomes[session_id]
                    outcome.fault = fault_kinds.get(session_id, ())
                    # Attacked = the attacker changed the transmission; an
                    # ingress-repaired (clamped/held) or dropped tick is
                    # judged on what *arrived* at the gateway, not on what
                    # the gateway then made of it.
                    # equal_nan: a malformed (NaN) benign fault delivered
                    # untouched must not read as tampering.
                    benign_sample = np.asarray(benign[session_id], dtype=np.float64)
                    if outcome.ingress is None and not outcome.dropped:
                        outcome.attacked = not np.array_equal(
                            outcome.sample, benign_sample, equal_nan=True
                        )
                    else:
                        outcome.attacked = not np.array_equal(
                            np.asarray(delivered[session_id], dtype=np.float64),
                            benign_sample,
                            equal_nan=True,
                        )
                    session_trace = report.sessions[session_id]
                    session_trace.ticks.append(outcome)
                    session_trace.delivered_at.append(global_tick)
                    session_trace.scenarios.append(trace["scenarios"][position])
                    trace["position"] = position + 1
                    trace["segment_deliveries"] += 1
                    interval = trace["period"]
                    if jitter:
                        interval += float(rng.uniform(-jitter, jitter))
                    trace["next_time"] += max(interval, 0.25)

                    if churn is None:
                        continue
                    if trace["position"] >= len(trace["features"]):
                        if churn.close_on_drain:
                            # Drained: recycle the slot while others stream.
                            close_segment(trace)
                    elif (
                        churn.disconnect_every is not None
                        and trace["segment_deliveries"] >= churn.disconnect_every
                    ):
                        # Mid-trace disconnect: the device goes offline and
                        # resumes later as a fresh session segment.
                        close_segment(trace)
                        trace["segment"] += 1
                        trace["join_time"] = global_tick + 1 + churn.reconnect_after
            self._score_episodes(report)
            self._emit_report(report)
        finally:
            # Always tear the replay's sessions down — a mid-replay failure
            # must not leak sessions/slots into a bring-your-own scheduler.
            for trace in traces:
                if trace["session"] is not None:
                    session = trace["session"]
                    if session.health is not None and session.session_id in report.sessions:
                        report.sessions[session.session_id].health_timeline = list(
                            session.health.timeline
                        )
                    scheduler.close_session(session.session_id)
            if owned_fabric is not None:
                owned_fabric.shutdown()
        return report

    # ------------------------------------------------------------------ helpers
    def _emit_report(self, report: ReplayReport) -> None:
        """Emit the replay-level series the chaos rollup is recomputed from.

        ``replay.verdicts_total`` (labeled by detector / truth / fault /
        flagged) carries the full tick-level confusion,
        ``replay.episodes_total`` and the ``replay.detection_latency_ticks``
        histogram carry the episode view.  Latencies are integral tick
        counts, so the histogram ``sum`` stays exact and
        ``sum / count`` reproduces :meth:`ReplayReport.mean_detection_latency`
        bitwise; ``scripts/obs_report.py`` renders these back into the
        per-detector rollup shape.
        """
        if self.obs is None:
            return
        registry = self.obs.registry
        for detector in report.detector_names:
            for _, outcome, verdict in report._iter_verdicts(detector):
                if verdict.flagged is None:
                    flagged = "degraded"
                else:
                    flagged = "yes" if verdict.flagged else "no"
                registry.inc(
                    "replay.verdicts_total",
                    detector=detector,
                    truth="attacked" if outcome.attacked else "benign",
                    fault="yes" if outcome.fault else "no",
                    flagged=flagged,
                )
            for episode in report.episode_outcomes(detector):
                registry.inc(
                    "replay.episodes_total",
                    detector=detector,
                    detected="yes" if episode.detected else "no",
                )
                if episode.latency_ticks is not None:
                    registry.observe(
                        "replay.detection_latency_ticks",
                        episode.latency_ticks,
                        detector=detector,
                    )

    def _score_episodes(self, report: ReplayReport) -> None:
        if self.attacker is None:
            return
        for session_id, episodes in self.attacker.episodes.items():
            trace = report.sessions.get(session_id)
            if trace is None:
                continue
            for episode in episodes:
                if episode.start >= trace.n_ticks:
                    # The episode's tick range never ran for this session —
                    # the trace was truncated (max_ticks) or, under churn,
                    # the device disconnected before reaching it (episodes
                    # are keyed per session *segment*, whose local ticks
                    # restart at 0).  Emitting a detected=False outcome here
                    # would report a "missed" attack that was never injected.
                    continue
                for detector in report.detector_names:
                    first_flag: Optional[int] = None
                    for outcome in trace.ticks[episode.start : episode.end]:
                        verdict = outcome.verdicts.get(detector)
                        if verdict is not None and not verdict.warming and verdict.flagged:
                            first_flag = outcome.tick
                            break
                    report.episodes.append(
                        EpisodeOutcome(
                            session_id=session_id,
                            detector=detector,
                            episode=episode,
                            detected=first_flag is not None,
                            first_flag_tick=first_flag,
                        )
                    )
