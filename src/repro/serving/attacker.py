"""Mid-stream man-in-the-middle attacker built on the URET evasion engine.

The offline attack manipulates a whole window at once.  A live attacker on
the CGM→pump link is weaker: past measurements have already been delivered,
so at each tick it may only rewrite the sample currently in flight.  This
module models exactly that adversary:

* During an :class:`AttackEpisode`, each incoming benign sample is attacked
  through the URET search on the *live context window* (the last
  ``history - 1`` delivered samples — including the attacker's own earlier
  tampering — plus the incoming sample), constrained to the scenario's
  plausible glucose range **and** to modifying at most the newest
  ``max_tampered_per_tick`` samples.  The delivered sample carries the CGM
  value the search assigned to the window's final position.
* Because each tick's tampering persists in the next tick's context, the
  manipulated suffix grows across an episode — the online analogue of the
  offline suffix transformations, and the mechanism that lets the attack
  build toward a hyperglycemia misdiagnosis over a few ticks.
* Once the context already predicts hyperglycemia (the goal is reached, so
  the window is ineligible for further search), ``sustain=True`` keeps
  delivering the last tampered CGM value to hold the misdiagnosis instead of
  snapping back to the benign stream.

Sessions under attack in the same tick that share a predictor are searched in
lockstep through :meth:`EvasionAttack.attack_batch` — the same batched engine
the offline campaign uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.constraints import (
    CompositeConstraint,
    MaxModifiedSamplesConstraint,
    constraint_for_scenario,
)
from repro.attacks.uret import EvasionAttack
from repro.data.cohort import CGM_COLUMN
from repro.glucose.states import Scenario, hyperglycemia_threshold
from repro.serving.session import PatientSession


@dataclass(frozen=True)
class AttackEpisode:
    """A contiguous tampering interval in session-tick coordinates."""

    start: int
    duration: int

    def __post_init__(self):
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    @property
    def end(self) -> int:
        """First tick after the episode."""
        return self.start + self.duration

    def covers(self, tick: int) -> bool:
        return self.start <= tick < self.end


@dataclass
class TamperRecord:
    """One delivered-sample manipulation, with its search provenance.

    ``success`` reports whether the *realized* window (the delivered stream)
    crossed the hyperglycemia threshold; sustain-mode ticks (``eligible``
    False — the context already predicted hyper, so no search ran) record
    ``success`` False.
    """

    session_id: str
    tick: int
    scenario: Scenario
    benign_cgm: float
    delivered_cgm: float
    eligible: bool
    success: bool
    queries: int
    #: True when this tick was resolved by replaying the previous tick's
    #: surviving transformation path (2 model queries) instead of a search.
    warm_started: bool = False

    @property
    def shift(self) -> float:
        """Signed CGM manipulation in mg/dL."""
        return self.delivered_cgm - self.benign_cgm


class OnlineAttacker:
    """Tamper live CGM streams during configured attack episodes.

    Parameters
    ----------
    episodes:
        ``{session_id: [AttackEpisode, ...]}`` — when each stream is attacked.
    attack_factory:
        Builds the :class:`EvasionAttack` per predictor (swap explorers or
        transformation sets here); defaults to the greedy URET engine.
    max_tampered_per_tick:
        How many of the newest window samples a single tick's *search* may
        modify.  1 (the default) is the strict in-flight attacker: the
        searched window and the delivered stream are identical.  Larger
        values let the search exploit rewriting recently buffered samples,
        but only the final sample is ever delivered — so the realized window
        differs from the searched one, and success is re-evaluated on the
        realized window (one extra batched model query per tick) so
        :class:`TamperRecord` and the replay metrics always describe what
        the stream actually saw.
    sustain:
        Hold the last tampered CGM value while the context already predicts
        hyperglycemia (see module docstring).
    warm_start:
        Seed each tick's search with the previous tick's surviving
        transformation path (the online windows overlap in all but one
        sample, so the path that worked a tick ago usually still works).  A
        successful replay costs 2 model queries instead of a full lockstep
        search; a failed replay falls back to the search with one extra
        query.  Per-tick query counts stay exact either way
        (``TamperRecord.queries``/``warm_started``).  Set False to restart
        the search from scratch every tick (the pre-warm-start behavior).
    seed_beam:
        Warm start v2 (requires ``warm_start``): on a warm *miss* — the
        replayed path survived but its endpoint no longer reaches the goal —
        hand that endpoint to the explorer as a pre-scored starting-beam
        seed (``attack_batch(seed_beam=True)``), so the fallback search
        resumes from the best known adversarial point instead of the benign
        window.  Costs no extra queries; typically cuts them on warm-miss
        ticks because the seeded search converges in fewer depths.
    obs:
        Optional :class:`~repro.obs.Observer` recording the attacker's
        deterministic activity counters (``attack.ticks_tampered_total``,
        ``attack.model_queries_total``, ``attack.warm_start_hits_total``, …
        — all per-record event counts, mirroring :class:`TamperRecord`).
        None (the default) records nothing.
    """

    def __init__(
        self,
        episodes: Mapping[str, Sequence[AttackEpisode]],
        attack_factory: Optional[Callable[[object], EvasionAttack]] = None,
        max_tampered_per_tick: int = 1,
        sustain: bool = True,
        warm_start: bool = True,
        seed_beam: bool = False,
        obs=None,
    ):
        if max_tampered_per_tick <= 0:
            raise ValueError("max_tampered_per_tick must be positive")
        self.episodes: Dict[str, List[AttackEpisode]] = {
            str(session_id): sorted(session_episodes, key=lambda episode: episode.start)
            for session_id, session_episodes in episodes.items()
        }
        for session_id, session_episodes in self.episodes.items():
            for previous, current in zip(session_episodes, session_episodes[1:]):
                if current.start < previous.end:
                    raise ValueError(f"overlapping episodes for session {session_id!r}")
        self.attack_factory = attack_factory or (lambda predictor: EvasionAttack(predictor))
        if seed_beam and not warm_start:
            raise ValueError("seed_beam requires warm_start=True")
        self.max_tampered_per_tick = int(max_tampered_per_tick)
        self.sustain = bool(sustain)
        self.warm_start = bool(warm_start)
        self.seed_beam = bool(seed_beam)
        self.obs = obs
        self.records: List[TamperRecord] = []
        # session_id -> the transformation path that reached the goal at that
        # session's previous attacked tick (the warm-start seed).
        self._seed_paths: Dict[str, List[str]] = {}
        self._attacks: Dict[str, EvasionAttack] = {}
        # id -> (predictor, hash); holding the predictor reference keeps the
        # id from being recycled for as long as the memo entry exists.
        self._hash_by_predictor: Dict[int, Tuple[object, str]] = {}
        self._held_cgm: Dict[str, float] = {}

    # ------------------------------------------------------------------ helpers
    def active_episode(self, session_id: str, tick: int) -> Optional[AttackEpisode]:
        for episode in self.episodes.get(str(session_id), ()):
            if episode.covers(tick):
                return episode
        return None

    def _attack_for(self, session: PatientSession) -> EvasionAttack:
        # state_hash digests every weight tensor — far too expensive for the
        # per-tick intercept path — so memoize it per predictor object (the
        # hash still deduplicates separately loaded identical checkpoints).
        predictor = session.predictor
        memo = self._hash_by_predictor.get(id(predictor))
        if memo is None or memo[0] is not predictor:
            memo = self._hash_by_predictor[id(predictor)] = (
                predictor,
                predictor.state_hash(),
            )
        key = memo[1]
        if key not in self._attacks:
            self._attacks[key] = self.attack_factory(predictor)
        return self._attacks[key]

    def _constraint_for(self, scenario: Scenario) -> CompositeConstraint:
        return CompositeConstraint(
            [
                constraint_for_scenario(scenario),
                MaxModifiedSamplesConstraint(max_modified=self.max_tampered_per_tick),
            ]
        )

    # ---------------------------------------------------------------- intercept
    def intercept(
        self,
        items: Sequence[Tuple[PatientSession, np.ndarray, Scenario]],
    ) -> Dict[str, np.ndarray]:
        """Intercept one tick's transmissions; return the delivered samples.

        ``items`` are ``(session, benign_sample, scenario)`` triples.  Streams
        outside an active episode (or still warming up) pass through benign;
        the rest are attacked — grouped by (predictor, scenario) and searched
        in lockstep via ``attack_batch``.
        """
        delivered: Dict[str, np.ndarray] = {}
        groups: Dict[tuple, dict] = {}

        for session, benign_sample, scenario in items:
            benign_sample = np.asarray(benign_sample, dtype=np.float64)
            session_id = session.session_id
            delivered[session_id] = benign_sample
            episode = self.active_episode(session_id, session.ticks)
            if episode is None:
                self._held_cgm.pop(session_id, None)
                self._seed_paths.pop(session_id, None)
                continue
            context = session.context_window(benign_sample)
            if context is None:  # not enough delivered history to form a window
                continue
            if not np.all(np.isfinite(context)):
                # A malformed (NaN / inf) sample is in flight or in recent
                # history — the evasion search would only propagate garbage
                # through the model, so the attacker sits this tick out.
                continue
            attack = self._attack_for(session)
            key = (id(attack), scenario)
            group = groups.setdefault(
                key, {"attack": attack, "scenario": scenario, "entries": []}
            )
            group["entries"].append((session, benign_sample, context))

        for group in groups.values():
            attack: EvasionAttack = group["attack"]
            scenario: Scenario = group["scenario"]
            windows = np.stack([context for _, _, context in group["entries"]])
            seed_paths = None
            if self.warm_start:
                seed_paths = [
                    self._seed_paths.get(session.session_id)
                    for session, _, _ in group["entries"]
                ]
                if not any(seed_paths):
                    seed_paths = None
            results = attack.attack_batch(
                windows,
                [scenario] * len(windows),
                constraint=self._constraint_for(scenario),
                batched=True,
                seed_paths=seed_paths,
                seed_beam=self.seed_beam and seed_paths is not None,
            )
            if self.warm_start:
                # Remember each session's surviving path as the next tick's
                # seed; a failed search invalidates the stale seed.  Sustain
                # ticks (ineligible: the context already predicts hyper)
                # keep their seed for when the search resumes.
                for (session, _, _), result in zip(group["entries"], results):
                    if not result.eligible:
                        continue
                    if result.success and result.path:
                        self._seed_paths[session.session_id] = list(result.path)
                    else:
                        self._seed_paths.pop(session.session_id, None)
            pending: List[tuple] = []
            for (session, benign_sample, context), result in zip(group["entries"], results):
                session_id = session.session_id
                benign_cgm = float(benign_sample[CGM_COLUMN])
                tampered_cgm: Optional[float] = None
                from_search = False
                if result.eligible:
                    candidate = float(result.adversarial_window[-1, CGM_COLUMN])
                    if abs(candidate - benign_cgm) > 1e-12:
                        tampered_cgm = candidate
                        from_search = True
                elif self.sustain and session_id in self._held_cgm:
                    # Goal already reached: hold the manipulated level instead
                    # of snapping back to the benign stream.
                    tampered_cgm = self._held_cgm[session_id]
                if tampered_cgm is None:
                    continue
                pending.append(
                    (session, benign_sample, context, result, tampered_cgm, from_search)
                )

            successes = [bool(result.success) for *_, result, _, _ in pending]
            if self.max_tampered_per_tick > 1 and pending:
                # The search was allowed to rewrite already-delivered samples,
                # but only the final sample is delivered — re-evaluate success
                # on the *realized* windows so records describe what the
                # stream actually saw.  (With max_tampered_per_tick == 1 the
                # searched and realized windows are identical; skip the query.)
                searched = [entry for entry in pending if entry[5]]
                if searched:
                    realized = np.stack(
                        [entry[2] for entry in searched]
                    )  # context windows
                    realized = realized.copy()
                    realized[:, -1, CGM_COLUMN] = [entry[4] for entry in searched]
                    predictions = attack.predictor.predict(realized)
                    threshold = hyperglycemia_threshold(scenario)
                    realized_success = iter(predictions > threshold)
                    successes = [
                        bool(next(realized_success)) if entry[5] else success
                        for entry, success in zip(pending, successes)
                    ]

            for (session, benign_sample, _, result, tampered_cgm, _), success in zip(
                pending, successes
            ):
                session_id = session.session_id
                sample = benign_sample.copy()
                sample[CGM_COLUMN] = tampered_cgm
                delivered[session_id] = sample
                self._held_cgm[session_id] = tampered_cgm
                record = TamperRecord(
                    session_id=session_id,
                    tick=session.ticks,
                    scenario=scenario,
                    benign_cgm=float(benign_sample[CGM_COLUMN]),
                    delivered_cgm=tampered_cgm,
                    eligible=bool(result.eligible),
                    success=success,
                    queries=int(result.queries),
                    warm_started=bool(result.warm_started),
                )
                self.records.append(record)
                if self.obs is not None:
                    registry = self.obs.registry
                    mode = "search" if record.eligible else "sustain"
                    registry.inc("attack.ticks_tampered_total", mode=mode)
                    registry.inc("attack.model_queries_total", record.queries)
                    if record.warm_started:
                        registry.inc("attack.warm_start_hits_total")
                    if record.eligible and record.success:
                        registry.inc("attack.successful_ticks_total")
        return delivered
