"""Live per-patient streaming sessions.

A :class:`PatientSession` is the serving-side unit of state for one CGM
stream.  It owns everything that is *per patient*: a fixed-size ring of the
last ``history`` delivered raw samples (the context an online attacker and the
parity checks need), the per-stream detector adapters, and a slot handle into
its lane's stacked recurrent state (the scaler statistics and ring-buffered
input projections live with the lane's predictor, shared by every session on
the same model).  Memory per session is fixed — advancing a tick never
allocates anything that grows with the stream length.

Sessions are created by :meth:`StreamScheduler.open_session` and advanced by
:meth:`StreamScheduler.tick`; :meth:`PatientSession.update` is the one-session
convenience wrapper over the scheduler tick.

Everything a session holds — ring, counters, health, detector adapters — is
plain picklable state with no live OS resources, which is what lets
``repro.serving.recovery`` capture sessions into scheduler snapshots and
restore them bit-for-bit (``docs/recovery.md``); the predictor itself is
deduplicated out of the pickle graph by ``state_hash``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.detectors.streaming import StreamingDetector, StreamVerdict
from repro.glucose.predictor import GlucosePredictor
from repro.utils.timeseries import SampleRing


@dataclass
class SessionTick:
    """Everything the serving layer produced for one session at one tick.

    Attributes
    ----------
    session_id, tick:
        Session identity and its 0-based tick counter.
    sample:
        The *delivered* raw sample — what the model and detectors actually
        saw, i.e. the tampered value when an online attacker intercepted it
        (for a ``dropped`` tick: the sample that was refused).
    prediction:
        Forecast in mg/dL, or None while the prediction window is warming up.
    verdicts:
        Per-detector streaming verdicts for this measurement.
    attacked:
        True when the delivered sample differs from the benign one (set by
        the replayer / caller that did the tampering).
    fault:
        Benign sensor-fault kinds active on this tick (set by the replayer's
        :class:`~repro.serving.faults.FaultInjector`); empty when none.
    ingress:
        Ingress-validation outcome when the delivered sample was repaired or
        refused: ``"clamped"``, ``"held"``, ``"rejected"``, or
        ``"quarantined"``; None for a normally served tick.
    dropped:
        True when the tick was never served (ingress rejection or
        quarantine) — no model step ran, no verdicts exist.
    error:
        Short description of the failure that poisoned this tick (lane
        exception, detector failure, non-finite prediction); None otherwise.
    """

    session_id: str
    tick: int
    sample: np.ndarray
    prediction: Optional[float]
    verdicts: Dict[str, StreamVerdict] = field(default_factory=dict)
    attacked: bool = False
    fault: tuple = ()
    ingress: Optional[str] = None
    dropped: bool = False
    error: Optional[str] = None


class PatientSession:
    """One live patient stream attached to a scheduler lane.

    Parameters
    ----------
    session_id:
        Unique id within the scheduler (defaults to the patient label).
    patient_label:
        The patient this stream belongs to.
    predictor:
        The fitted forecaster serving this stream (personalized or aggregate).
    detectors:
        Optional ``{name: StreamingDetector}`` monitors fed every delivered
        sample.  Adapters are per-session (they hold per-stream rings) but may
        share their underlying fitted detector object — the scheduler batches
        detector queries across sessions sharing one.
    """

    def __init__(
        self,
        session_id: str,
        patient_label: str,
        predictor: GlucosePredictor,
        detectors: Optional[Mapping[str, StreamingDetector]] = None,
    ):
        self.session_id = str(session_id)
        self.patient_label = str(patient_label)
        self.predictor = predictor
        self.detectors: Dict[str, StreamingDetector] = dict(detectors or {})
        self.history = int(predictor.history)
        self.ticks = 0
        self.last_prediction: Optional[float] = None
        #: Health state machine (set by a health-enabled scheduler; None
        #: otherwise — the zero-overhead default).
        self.health = None
        #: Last successfully delivered raw sample (the ingress hold-last
        #: source); None until the first delivery.
        self.last_sample: Optional[np.ndarray] = None

        self._ring = SampleRing(self.history)

        # Scheduler wiring (set by StreamScheduler.open_session).
        self._scheduler = None
        self._lane_key: Optional[str] = None
        self._slot: Optional[int] = None

    # ------------------------------------------------------------------ wiring
    def _attach(self, scheduler, lane_key: str, slot: int) -> None:
        self._scheduler = scheduler
        self._lane_key = lane_key
        self._slot = slot

    @property
    def slot(self) -> Optional[int]:
        """This session's row in its lane's stacked recurrent state."""
        return self._slot

    @property
    def lane_key(self) -> Optional[str]:
        """Hash of the model (weights + scaler) this session is served by."""
        return self._lane_key

    # ----------------------------------------------------------------- history
    def _push_raw(self, sample: np.ndarray) -> None:
        """Record a delivered sample in the fixed-size history ring."""
        self._ring.push(sample)
        self.last_sample = sample

    def _reset_stream_state(self) -> None:
        """Forget all per-stream history (quarantine: the state may be corrupt).

        The ring, the detector adapters, and the cached last sample are
        cleared; the owning scheduler resets the lane slot's recurrent state
        separately.  A re-admitted session warms up from scratch, exactly
        like a churn reconnect.
        """
        self._ring.reset()
        self.last_sample = None
        self.last_prediction = None
        for adapter in self.detectors.values():
            adapter.reset()

    def window(self) -> Optional[np.ndarray]:
        """The last ``history`` delivered samples in time order, or None."""
        return self._ring.window()

    def context_window(self, incoming: np.ndarray) -> Optional[np.ndarray]:
        """The window the model *would* see if ``incoming`` were delivered now.

        The last ``history - 1`` delivered samples plus the incoming one —
        the context an online attacker manipulates before delivery.  None
        while fewer than ``history - 1`` samples have been delivered.
        """
        return self._ring.tail_with(incoming)

    # ----------------------------------------------------------------- ticking
    def update(self, sample: np.ndarray) -> SessionTick:
        """Deliver one sample through the owning scheduler (single-session tick)."""
        if self._scheduler is None:
            raise RuntimeError(
                "session is not attached to a scheduler; create it via "
                "StreamScheduler.open_session"
            )
        return self._scheduler.tick({self.session_id: sample})[self.session_id]
