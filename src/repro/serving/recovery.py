"""Crash recovery for the serving fabric: deterministic scheduler snapshots.

The repo's signature discipline is bitwise parity between every fast path and
its reference twin.  This module extends that contract across process death:
**a recovered run is bit-for-bit identical to a run that never crashed**.

Three layers:

``capture_scheduler`` / ``restore_scheduler``
    Snapshot a live :class:`~repro.serving.scheduler.StreamScheduler` into a
    :class:`SchedulerSnapshot` and rebuild an equivalent scheduler from it.
    The snapshot captures the *complete* deterministic state — per-session
    sample rings, lane slot allocators and recurrent stream states
    (``BiLSTMStreamState``), streaming-detector adapter state (LSTM-VAE
    projection rings, HMM alpha bands, MAD-GAN ``InversionState``),
    ``SessionHealth`` machines with their backoff depth, and every
    component's ``RandomState`` position (numpy ``Generator`` objects pickle
    their exact bit-stream position).  Model weights are content-addressed:
    each lane's predictor is serialized **once** under its ``state_hash``
    lane key and every session that shares the lane references the same
    payload — sessions never duplicate weights.  Restore re-validates each
    rehydrated checkpoint against its lane key
    (:func:`repro.serving.health.validate_checkpoint`), so a corrupted model
    payload is rejected rather than silently served.

``SchedulerCheckpointer``
    Durable snapshot files: a versioned, magic-tagged header with a SHA-256
    body digest, written to a temporary file and atomically renamed into
    place (a crash mid-write never leaves a half-snapshot under the real
    name).  ``load`` detects truncation and corruption and raises
    :class:`SnapshotError` instead of returning garbage.

Aliasing and tokens
    The whole mutable state is serialized as **one** pickle graph, so object
    aliasing survives: two sessions sharing one detector (and therefore one
    RNG stream) come back still sharing it, which is what keeps the
    scheduler's ``id()``-based detector batching and the detector's single
    RNG draw order bitwise stable after restore.  Objects that must *not*
    travel — the scheduler itself (sessions hold a back-reference), the
    :class:`~repro.obs.trace.Observer`, and each lane predictor — are
    replaced by persistent-id tokens and rewired to the restored scheduler's
    own instances on load.  The same token mechanism is what the shard layer
    uses to ship detectors by reference (:mod:`repro.serving.shard` imports
    :func:`dumps_with_refs` / :func:`loads_with_refs` from here).

Snapshots are taken at tick boundaries only; mid-tick transients
(``ColdBatchPlan``, the in-flight admission lists) never cross a snapshot.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import struct
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.serving.health import validate_checkpoint
from repro.serving.scheduler import StreamScheduler

#: Pickle protocol for snapshot payloads (shared with the shard pipe).
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Current snapshot schema version; bumped on incompatible layout changes.
SNAPSHOT_VERSION = 1

#: Magic prefix of a checkpoint file (8 bytes, includes the format revision).
SNAPSHOT_MAGIC = b"RPROSNP1"

#: Fixed-size file header: magic + u32 version + u64 body length + SHA-256.
_HEADER = struct.Struct("<8sIQ32s")


class SnapshotError(RuntimeError):
    """A snapshot could not be captured, validated, or restored."""


# --------------------------------------------------------------------- tokens
def dumps_with_refs(obj: Any, ref_by_id: Dict[int, Tuple[object, Any]]) -> bytes:
    """Pickle ``obj`` replacing registered objects with persistent-id tokens.

    ``ref_by_id`` maps ``id(candidate) -> (candidate, token)``; any object in
    the graph whose identity matches is emitted as its token instead of by
    value.  The identity check guards against ``id`` reuse after GC.
    """
    buffer = io.BytesIO()
    pickler = pickle.Pickler(buffer, protocol=PICKLE_PROTOCOL)

    def persistent_id(candidate):
        entry = ref_by_id.get(id(candidate))
        if entry is not None and entry[0] is candidate:
            return entry[1]
        return None

    pickler.persistent_id = persistent_id
    pickler.dump(obj)
    return buffer.getvalue()


def loads_with_refs(data: bytes, registry: Dict[Any, object]) -> Any:
    """Unpickle ``data`` resolving persistent-id tokens through ``registry``."""
    unpickler = pickle.Unpickler(io.BytesIO(data))
    unpickler.persistent_load = registry.__getitem__
    return unpickler.load()


# ------------------------------------------------------------------- snapshot
@dataclass
class SchedulerSnapshot:
    """A complete, self-contained scheduler state at one tick boundary.

    Attributes
    ----------
    version:
        Schema version (:data:`SNAPSHOT_VERSION`); restore rejects others.
    config:
        The ``StreamScheduler`` constructor kwargs (fast-path flag, health
        and ingress configs, validation and coalescing switches) — frozen
        dataclasses, included by value.
    models:
        Content-addressed weights: ``lane_key (state_hash) -> pickled
        predictor``, one payload per lane regardless of session count.
    state:
        One pickle graph of ``{"sessions", "lanes", "extra"}`` with
        scheduler / observer / predictor references tokenized out.
    obs_series:
        Cumulative :meth:`repro.obs.metrics.MetricsRegistry.snapshot` of the
        scheduler's observer at capture time, or None when unobserved.
    meta:
        Caller bookkeeping carried verbatim (the shard layer stores its tick
        counter and shipped-registry keys here so the supervisor can resync
        without unpickling ``state``).
    """

    version: int
    config: Dict[str, Any]
    models: Dict[str, bytes]
    state: bytes
    obs_series: Optional[Dict[str, dict]] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def n_sessions_hint(self) -> int:
        """Best-effort session count from ``meta`` (0 when not recorded)."""
        return int(self.meta.get("n_sessions", 0))


def capture_scheduler(
    scheduler: StreamScheduler,
    extra: Optional[Dict[str, Any]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> SchedulerSnapshot:
    """Snapshot ``scheduler`` (and optional ``extra`` state) at a tick boundary.

    ``extra`` is woven into the *same* pickle graph as the sessions, so any
    aliasing between the two survives restore — the shard worker passes its
    ``models`` / ``detectors`` registries here and gets back registries whose
    entries are identical (``is``) to the objects inside the restored
    sessions.  An ``extra["models"]`` mapping of ``lane_key -> predictor`` is
    additionally content-addressed like lane predictors (covers lanes that
    are currently empty but still resident in a worker registry).
    """
    ref_by_id: Dict[int, Tuple[object, Any]] = {}

    def register(obj: object, token: Any) -> None:
        ref_by_id[id(obj)] = (obj, token)

    register(scheduler, "scheduler")
    if scheduler.obs is not None:
        register(scheduler.obs, "obs")

    models: Dict[str, bytes] = {}

    def register_model(lane_key: str, predictor: object) -> None:
        if id(predictor) in ref_by_id:
            return
        if lane_key not in models:
            models[lane_key] = pickle.dumps(predictor, protocol=PICKLE_PROTOCOL)
        register(predictor, ("model", lane_key))

    for lane_key, lane in scheduler._lanes.items():
        register_model(lane_key, lane.predictor)
    for session in scheduler._sessions.values():
        # A session opened with its own (hash-equal) predictor object still
        # serializes by lane reference: weights are stored once per lane.
        register_model(session._lane_key, session.predictor)
    if extra is not None:
        for lane_key, predictor in extra.get("models", {}).items():
            register_model(lane_key, predictor)

    state = dumps_with_refs(
        {
            "sessions": scheduler._sessions,
            "lanes": scheduler._lanes,
            "extra": extra,
        },
        ref_by_id,
    )
    snapshot_meta = {"n_sessions": len(scheduler._sessions)}
    if meta:
        snapshot_meta.update(meta)
    return SchedulerSnapshot(
        version=SNAPSHOT_VERSION,
        config=dict(
            use_single_fast_path=scheduler.use_single_fast_path,
            health=scheduler.health,
            ingress=scheduler.ingress,
            validate_checkpoints=scheduler.validate_checkpoints,
            coalesce_cold_batches=scheduler.coalesce_cold_batches,
        ),
        models=models,
        state=state,
        obs_series=(
            scheduler.obs.registry.snapshot() if scheduler.obs is not None else None
        ),
        meta=snapshot_meta,
    )


def restore_scheduler(
    snapshot: SchedulerSnapshot, obs=None
) -> Tuple[StreamScheduler, Optional[Dict[str, Any]]]:
    """Rebuild a scheduler from ``snapshot``; returns ``(scheduler, extra)``.

    The restored scheduler's subsequent ticks are bitwise equal to the
    uninterrupted original's (pickle round-trips preserve float64 bits and
    numpy ``Generator`` positions exactly).  Every model payload is
    re-validated against its content-address before any session touches it;
    a weight payload that no longer hashes to its lane key (or carries
    non-finite values) raises :class:`~repro.serving.health.CheckpointError`.

    ``obs`` becomes the restored scheduler's observer.  When given, the
    snapshot's cumulative metric series is absorbed into it so counters
    continue from their pre-crash values instead of restarting at zero.
    """
    if snapshot.version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {snapshot.version} is not supported "
            f"(expected {SNAPSHOT_VERSION})"
        )
    scheduler = StreamScheduler(obs=obs, **snapshot.config)
    registry: Dict[Any, object] = {"scheduler": scheduler, "obs": obs}
    for lane_key, payload in snapshot.models.items():
        try:
            predictor = pickle.loads(payload)
        except Exception as exc:
            raise SnapshotError(
                f"model payload for lane {lane_key!r} failed to deserialize: {exc}"
            ) from exc
        validate_checkpoint(predictor, expected_hash=lane_key)
        registry[("model", lane_key)] = predictor
    try:
        state = loads_with_refs(snapshot.state, registry)
    except KeyError as exc:
        raise SnapshotError(f"snapshot references unknown token {exc}") from exc
    scheduler._sessions = state["sessions"]
    scheduler._lanes = state["lanes"]
    if obs is not None and snapshot.obs_series is not None:
        obs.registry.absorb(snapshot.obs_series)
    return scheduler, state["extra"]


# ---------------------------------------------------------------- checkpointer
def write_snapshot(snapshot: SchedulerSnapshot, path) -> Path:
    """Serialize ``snapshot`` to ``path`` atomically (temp file + rename)."""
    path = Path(path)
    body = pickle.dumps(snapshot, protocol=PICKLE_PROTOCOL)
    header = _HEADER.pack(
        SNAPSHOT_MAGIC, SNAPSHOT_VERSION, len(body), hashlib.sha256(body).digest()
    )
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(header)
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def read_snapshot(path) -> SchedulerSnapshot:
    """Load a snapshot file, rejecting truncation and corruption.

    Raises :class:`SnapshotError` on a bad magic, unsupported version, short
    body (truncated write), or SHA-256 mismatch (bit rot / tampering).
    """
    path = Path(path)
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise SnapshotError(f"{path}: truncated snapshot header")
        magic, version, body_len, digest = _HEADER.unpack(header)
        if magic != SNAPSHOT_MAGIC:
            raise SnapshotError(f"{path}: not a scheduler snapshot (bad magic)")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{path}: snapshot version {version} is not supported "
                f"(expected {SNAPSHOT_VERSION})"
            )
        body = handle.read(body_len + 1)
    if len(body) < body_len:
        raise SnapshotError(
            f"{path}: truncated snapshot body ({len(body)} of {body_len} bytes)"
        )
    if len(body) > body_len:
        raise SnapshotError(f"{path}: trailing bytes after snapshot body")
    if hashlib.sha256(body).digest() != digest:
        raise SnapshotError(f"{path}: snapshot checksum mismatch (corrupted)")
    snapshot = pickle.loads(body)
    if not isinstance(snapshot, SchedulerSnapshot):
        raise SnapshotError(f"{path}: payload is not a SchedulerSnapshot")
    return snapshot


class SchedulerCheckpointer:
    """Rotating, durable snapshot files for one scheduler.

    Parameters
    ----------
    directory:
        Where checkpoint files live; created on first save.
    basename:
        File stem; files are named ``{basename}-{seq:08d}.snap`` with a
        monotonically increasing sequence number.
    keep:
        How many most-recent checkpoints to retain (older ones are pruned
        after each successful save; at least 1).
    """

    SUFFIX = ".snap"

    def __init__(self, directory, basename: str = "scheduler", keep: int = 2):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.basename = str(basename)
        self.keep = int(keep)

    # ------------------------------------------------------------------ paths
    def _paths(self):
        if not self.directory.is_dir():
            return []
        prefix = f"{self.basename}-"
        return sorted(
            entry
            for entry in self.directory.iterdir()
            if entry.name.startswith(prefix) and entry.name.endswith(self.SUFFIX)
        )

    def latest(self) -> Optional[Path]:
        """Path of the newest checkpoint, or None when none exist."""
        paths = self._paths()
        return paths[-1] if paths else None

    # ------------------------------------------------------------------- save
    def save(self, snapshot: SchedulerSnapshot) -> Path:
        """Write ``snapshot`` as the next checkpoint in the rotation."""
        self.directory.mkdir(parents=True, exist_ok=True)
        existing = self._paths()
        if existing:
            last = existing[-1].name
            sequence = int(last[len(self.basename) + 1 : -len(self.SUFFIX)]) + 1
        else:
            sequence = 0
        path = self.directory / f"{self.basename}-{sequence:08d}{self.SUFFIX}"
        write_snapshot(snapshot, path)
        for stale in self._paths()[: -self.keep]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - best-effort pruning
                pass
        return path

    # ------------------------------------------------------------------- load
    def load(self, path=None) -> SchedulerSnapshot:
        """Load ``path`` (default: the newest checkpoint) with full validation."""
        if path is None:
            path = self.latest()
            if path is None:
                raise SnapshotError(
                    f"no {self.basename!r} checkpoints under {self.directory}"
                )
        return read_snapshot(path)


__all__ = [
    "PICKLE_PROTOCOL",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SchedulerCheckpointer",
    "SchedulerSnapshot",
    "SnapshotError",
    "capture_scheduler",
    "dumps_with_refs",
    "loads_with_refs",
    "read_snapshot",
    "restore_scheduler",
    "write_snapshot",
]
