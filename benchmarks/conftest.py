"""Shared pipeline state for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  The expensive
artifacts (synthetic cohort, trained forecasters, attack campaigns, detector
comparison) are built once per session here; each benchmark then times the
analysis step that produces its table/figure and prints the rendered report.

The configuration is intentionally smaller than the paper scale (a laptop-CPU
budget); raise ``REPRO_BENCH_TRAIN_DAYS`` / ``REPRO_BENCH_TEST_DAYS`` /
``REPRO_BENCH_EPOCHS`` to move towards the OhioT1DM scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict

import pytest

from repro.attacks import AttackCampaign
from repro.data import expected_less_vulnerable_labels, generate_cohort
from repro.eval import SelectiveTrainingExperiment, default_detector_factories
from repro.glucose import GlucoseModelZoo
from repro.risk import RiskProfilingFramework, SelectionPlanner

REPORT_DIR = Path(__file__).parent / "reports"


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@dataclass
class PipelineState:
    """Everything the per-figure benchmarks need."""

    cohort: object
    zoo: GlucoseModelZoo
    framework: RiskProfilingFramework
    assessment: object
    train_campaign: object
    test_campaign: object
    planner: SelectionPlanner
    selections: Dict[str, object]
    selective_result: object


@pytest.fixture(scope="session")
def pipeline() -> PipelineState:
    train_days = _env_int("REPRO_BENCH_TRAIN_DAYS", 4)
    test_days = _env_int("REPRO_BENCH_TEST_DAYS", 2)
    epochs = _env_int("REPRO_BENCH_EPOCHS", 4)
    madgan_epochs = _env_int("REPRO_BENCH_MADGAN_EPOCHS", 8)

    cohort = generate_cohort(train_days=train_days, test_days=test_days, seed=7)
    zoo = GlucoseModelZoo(
        predictor_kwargs=dict(epochs=epochs, hidden_size=12),
        train_personalized=True,
        seed=3,
    )
    zoo.fit(cohort)

    framework = RiskProfilingFramework(zoo, campaign=AttackCampaign(zoo, stride=4), n_clusters=2)
    assessment = framework.assess(cohort, split="train")
    test_campaign = AttackCampaign(zoo, stride=3).run_cohort(cohort, split="test")

    # The detector comparison uses the paper's Table II grouping so that the
    # headline figures are not confounded by clustering differences between the
    # synthetic cohort and the real OhioT1DM patients; the clustering benchmark
    # reports our framework's recovered clusters next to the paper's.
    planner = SelectionPlanner(
        all_labels=sorted(record.label for record in cohort),
        less_vulnerable=expected_less_vulnerable_labels(),
        random_runs=_env_int("REPRO_BENCH_RANDOM_RUNS", 3),
        seed=11,
    )
    selections = planner.plan()
    experiment = SelectiveTrainingExperiment(
        train_campaign=assessment.campaign,
        test_campaign=test_campaign,
        detector_factories=default_detector_factories(
            madgan_epochs=madgan_epochs, madgan_inversion_steps=40
        ),
    )
    selective_result = experiment.run(selections)

    return PipelineState(
        cohort=cohort,
        zoo=zoo,
        framework=framework,
        assessment=assessment,
        train_campaign=assessment.campaign,
        test_campaign=test_campaign,
        planner=planner,
        selections=selections,
        selective_result=selective_result,
    )


def write_report(name: str, content: str) -> None:
    """Persist a rendered table/figure so EXPERIMENTS.md can reference it."""
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(content + "\n")
    print(f"\n===== {name} =====\n{content}\n")
