"""Benchmarks regenerating Figures 7, 8, and 11 and the headline claims.

* Figure 7  — recall per detector under the four training strategies.
* Figure 8  — precision per detector under the four training strategies.
* Figure 11 — F1-score per detector under the four training strategies.
* Headline  — the paper's summary claims (recall gain, precision impact, and
  MAD-GAN's 75% training-set reduction at unchanged recall).
"""

from benchmarks.conftest import write_report
from repro.eval import render_headline_claims, render_metric_figure
from repro.risk import STRATEGY_ALL, STRATEGY_LESS_VULNERABLE, STRATEGY_MORE_VULNERABLE


def test_fig7_recall(benchmark, pipeline):
    """Figure 7: selective training on the less vulnerable cluster boosts recall."""
    result = pipeline.selective_result
    text = benchmark(render_metric_figure, result, "recall", "Recall")

    for detector in ("kNN", "OneClassSVM"):
        less = result.outcome(detector, STRATEGY_LESS_VULNERABLE).recall
        baseline = result.outcome(detector, STRATEGY_ALL).recall
        more = result.outcome(detector, STRATEGY_MORE_VULNERABLE).recall
        assert less >= baseline, f"{detector}: less-vulnerable recall must beat indiscriminate"
        assert less >= more, f"{detector}: less-vulnerable recall must beat more-vulnerable"
    # MAD-GAN: recall under less-vulnerable training is at least as good as the
    # indiscriminate baseline (the paper reports both at recall 1.0).
    madgan = result.outcomes.get("MAD-GAN")
    if madgan:
        assert madgan[STRATEGY_LESS_VULNERABLE].recall >= madgan[STRATEGY_ALL].recall - 0.05
    write_report("fig7_recall", text)


def test_fig8_precision(benchmark, pipeline):
    """Figure 8: the precision impact of selective training stays bounded."""
    result = pipeline.selective_result
    text = benchmark(render_metric_figure, result, "precision", "Precision")

    for detector in result.detectors:
        less = result.outcome(detector, STRATEGY_LESS_VULNERABLE).precision
        assert 0.0 <= less <= 1.0
    write_report("fig8_precision", text)


def test_fig11_f1(benchmark, pipeline):
    """Figure 11: the combined effect (F1) still favours selective training for OCSVM."""
    result = pipeline.selective_result
    text = benchmark(render_metric_figure, result, "f1", "F1")
    ocsvm = result.outcomes["OneClassSVM"]
    assert ocsvm[STRATEGY_LESS_VULNERABLE].f1 >= ocsvm[STRATEGY_ALL].f1
    write_report("fig11_f1", text)


def test_headline_claims(benchmark, pipeline):
    """The paper's headline: recall gains with a 75% smaller MAD-GAN training set."""
    result = pipeline.selective_result
    text = benchmark(render_headline_claims, result)

    reduction = pipeline.planner.training_set_reduction()
    assert abs(reduction - 0.75) < 1e-9

    madgan = result.outcomes.get("MAD-GAN")
    extra = [f"Training-set reduction for the less-vulnerable cluster: {reduction:.0%} (paper: 75%)"]
    if madgan:
        less_windows = madgan[STRATEGY_LESS_VULNERABLE].training_windows
        all_windows = madgan[STRATEGY_ALL].training_windows
        extra.append(
            f"MAD-GAN training windows: {less_windows} (less vulnerable) vs {all_windows} (all patients)"
        )
        assert less_windows < all_windows
    write_report("headline_claims", text + "\n" + "\n".join(extra))
