"""Benchmarks regenerating Appendix A (Figures 9 and 10).

* Figure 9  — percentage of originally normal glucose instances misdiagnosed
  as hyperglycemic under the evasion attack.
* Figure 10 — percentage of originally hypoglycemic instances misdiagnosed as
  hyperglycemic.

Both are reported per patient, using the deployed (personalized) forecasters,
and averaged.  The paper's message is the heterogeneity: some patients are far
more resilient to the same attack settings than others.
"""

import numpy as np

from benchmarks.conftest import write_report
from repro.data import expected_less_vulnerable_labels, expected_more_vulnerable_labels
from repro.eval import attack_success_report, render_attack_success


def test_fig9_normal_to_hyper_misdiagnosis(benchmark, pipeline):
    """Figure 9: normal -> hyper misdiagnosis rate per patient."""
    report = benchmark(attack_success_report, pipeline.test_campaign)
    text = render_attack_success(report, "normal_to_hyper")

    rates = report.normal_to_hyper
    less = [rates[l] for l in expected_less_vulnerable_labels() if not np.isnan(rates[l])]
    more = [rates[l] for l in expected_more_vulnerable_labels() if not np.isnan(rates[l])]
    assert less, "less vulnerable patients must have eligible normal instances"
    # Heterogeneity: the attack does not succeed uniformly, and the less
    # vulnerable group is harder to attack on average.
    if more:
        assert float(np.mean(less)) <= float(np.mean(more))
    assert min(less) < 1.0
    write_report("fig9_normal_to_hyper", text)


def test_fig10_hypo_to_hyper_misdiagnosis(benchmark, pipeline):
    """Figure 10: hypo -> hyper misdiagnosis rate per patient.

    Hypoglycemic instances are rare in the synthetic traces (they mostly occur
    for the tightly controlled patients), so the check only asserts validity
    of the reported rates; patients without hypoglycemic instances report n/a,
    just as a real patient without hypoglycemia would.
    """
    report = benchmark(attack_success_report, pipeline.test_campaign)
    text = render_attack_success(report, "hypo_to_hyper")

    values = [value for value in report.hypo_to_hyper.values() if not np.isnan(value)]
    for value in values:
        assert 0.0 <= value <= 1.0
    write_report("fig10_hypo_to_hyper", text)
