"""Micro-benchmarks of the individual pipeline components.

These do not map to a paper figure; they document the computational cost of
each stage (forecaster inference, attack search, risk quantification,
clustering, detector scoring) so regressions are visible.
"""

import numpy as np

from repro.detectors import KNNClassifierDetector, OneClassSVMDetector
from repro.eval import confusion_matrix
from repro.glucose import Scenario
from repro.attacks import EvasionAttack
from repro.risk import RiskProfileBuilder, cluster_profiles, profile_matrix


def test_bench_forecaster_inference(benchmark, pipeline):
    """Latency of a batched forecaster prediction (256 windows)."""
    zoo = pipeline.zoo
    record = next(iter(pipeline.cohort))
    windows, _, _ = zoo.dataset.from_record(record, "test")
    batch = windows[:256] if len(windows) >= 256 else windows
    predictions = benchmark(zoo.model_for(record.label).predict, batch)
    assert np.all(np.isfinite(predictions))


def test_bench_single_window_attack(benchmark, pipeline):
    """Latency of one greedy evasion attack."""
    zoo = pipeline.zoo
    record = pipeline.cohort["A_5"]
    windows, _, _ = zoo.dataset.from_record(record, "test")
    attack = EvasionAttack(zoo.model_for("A_5"))
    result = benchmark(attack.attack_window, windows[0], Scenario.POSTPRANDIAL)
    assert result.queries >= 1


def test_bench_risk_profile_construction(benchmark, pipeline):
    """Cost of building all risk profiles from a finished campaign."""
    builder = RiskProfileBuilder()
    profiles = benchmark(builder.from_campaign, pipeline.train_campaign)
    assert len(profiles) == len(pipeline.cohort)


def test_bench_hierarchical_clustering(benchmark, pipeline):
    """Cost of clustering the cohort's risk profiles."""
    profiles = pipeline.assessment.profiles
    labels, matrix = profile_matrix(profiles, length=64)
    outcome = benchmark(cluster_profiles, labels, matrix, "average", 2)
    assert outcome.n_clusters == 2


def test_bench_knn_scoring(benchmark, pipeline):
    """Throughput of kNN scoring on the evaluation samples."""
    train_windows, train_labels, _ = pipeline.train_campaign.sample_dataset()
    test_windows, test_labels, _ = pipeline.test_campaign.sample_dataset()
    detector = KNNClassifierDetector().fit(train_windows, train_labels)
    predictions = benchmark(detector.predict, test_windows)
    matrix = confusion_matrix(test_labels, predictions)
    assert matrix.total == len(test_labels)


def test_bench_ocsvm_fit(benchmark, pipeline):
    """Cost of fitting the one-class SVM on the less-vulnerable benign samples."""
    windows, labels, _ = pipeline.train_campaign.sample_dataset(patient_labels=["A_5", "B_1", "B_2"])
    benign = windows[labels == 0]

    def fit():
        return OneClassSVMDetector(kernel="rbf", gamma="scale", nu=0.1, seed=0).fit(benign)

    detector = benchmark.pedantic(fit, rounds=1, iterations=1)
    assert detector.support_vectors_ is not None
