"""Benchmarks regenerating Figures 3 and 4.

* Figure 3 — per-patient time-series risk profiles and the hierarchical
  clustering dendrograms for Subset A and Subset B.
* Figure 4 — benign normal-to-abnormal glucose ratio per patient.
"""

import numpy as np

from benchmarks.conftest import write_report
from repro.data import expected_less_vulnerable_labels, expected_more_vulnerable_labels
from repro.eval import benign_ratio_by_patient, render_dendrogram, render_ratio_figure
from repro.risk import cluster_profiles, profile_matrix


def test_fig3_risk_profile_dendrograms(benchmark, pipeline):
    """Figure 3: dendrograms from hierarchically clustering the risk profiles."""
    profiles = pipeline.assessment.profiles

    def regenerate():
        reports = []
        for subset in ("A", "B"):
            subset_profiles = {
                label: profile for label, profile in profiles.items() if label.startswith(subset)
            }
            labels, matrix = profile_matrix(subset_profiles, length=48)
            outcome = cluster_profiles(labels, matrix, linkage="average", n_clusters=2)
            reports.append(f"Subset {subset} dendrogram\n" + render_dendrogram(outcome))
        return "\n\n".join(reports)

    text = benchmark(regenerate)
    assert "Subset A dendrogram" in text
    assert "Subset B dendrogram" in text
    # Every patient appears as a leaf.
    for label in profiles:
        assert label in text
    write_report("fig3_dendrograms", text)


def test_fig4_normal_to_abnormal_ratio(benchmark, pipeline):
    """Figure 4: less vulnerable patients show higher benign normal/abnormal ratios."""
    cohort = pipeline.cohort

    ratios = benchmark(benign_ratio_by_patient, cohort)
    text = render_ratio_figure(ratios)

    less = [ratios[label] for label in expected_less_vulnerable_labels()]
    more = [ratios[label] for label in expected_more_vulnerable_labels()]
    # Shape check from the paper: the less vulnerable group's ratios dominate.
    assert np.mean(less) > np.mean(more)
    assert max(more) < max(less)
    write_report("fig4_normal_abnormal_ratio", text)
