"""Benchmarks regenerating Figures 5 and 6.

* Figure 5 — indiscriminately trained kNN produces more false negatives on a
  more-vulnerable patient than on a less-vulnerable patient.
* Figure 6 — the four-quadrant taxonomy of glucose samples.
"""

import numpy as np

from benchmarks.conftest import write_report
from repro.detectors import KNNClassifierDetector
from repro.eval import (
    false_negative_rate_by_patient,
    quadrant_breakdown,
    render_false_negative_rates,
    render_quadrants,
    trace_detection,
)


def test_fig5_indiscriminate_training_false_negatives(benchmark, pipeline):
    """Figure 5: per-patient false negatives of an all-patients kNN detector."""
    train_windows, train_labels, _ = pipeline.train_campaign.sample_dataset()
    detector = KNNClassifierDetector(n_neighbors=7).fit(train_windows, train_labels)

    def regenerate():
        return false_negative_rate_by_patient(detector, pipeline.test_campaign)

    rates = benchmark(regenerate)
    text = render_false_negative_rates(rates)

    less_vulnerable_rates = [rates[l] for l in ("A_5", "B_2") if not np.isnan(rates.get(l, np.nan))]
    more_vulnerable_rates = [
        rate
        for label, rate in rates.items()
        if label not in ("A_5", "B_1", "B_2") and not np.isnan(rate)
    ]
    assert less_vulnerable_rates, "less vulnerable patients must have malicious samples"
    # The paper's message: indiscriminate training protects the less vulnerable
    # patients better (lower FN rate) than the more vulnerable ones.
    if more_vulnerable_rates:
        assert float(np.mean(less_vulnerable_rates)) <= float(np.mean(more_vulnerable_rates)) + 0.25

    trace = trace_detection(detector, pipeline.test_campaign, "A_5")
    assert trace
    write_report("fig5_false_negative_rates", text)


def test_fig6_sample_quadrants(benchmark, pipeline):
    """Figure 6: benign/malicious x normal/abnormal sample counts."""
    less_label, more_label = "A_5", "A_2"

    def regenerate():
        return (
            quadrant_breakdown(pipeline.test_campaign, less_label),
            quadrant_breakdown(pipeline.test_campaign, more_label),
        )

    less_counts, more_counts = benchmark(regenerate)
    text = (
        f"Less vulnerable patient ({less_label})\n"
        + render_quadrants(less_counts)
        + f"\n\nMore vulnerable patient ({more_label})\n"
        + render_quadrants(more_counts)
    )

    # Less vulnerable patients are dominated by benign-normal samples; more
    # vulnerable patients carry far more benign-abnormal samples (the source of
    # false negatives under indiscriminate training).
    assert less_counts.benign_normal > less_counts.benign_abnormal
    assert more_counts.benign_abnormal > more_counts.benign_normal
    write_report("fig6_quadrants", text)
