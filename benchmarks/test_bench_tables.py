"""Benchmarks regenerating the paper's tables.

* Table I  — severity coefficients for state transitions.
* Table II — patient vulnerability clusters recovered by the framework.
"""

import numpy as np

from benchmarks.conftest import write_report
from repro.data import expected_less_vulnerable_labels
from repro.eval import render_cluster_table, render_severity_table
from repro.risk import SeverityMatrix


def test_table1_severity_coefficients(benchmark):
    """Table I: the severity matrix used by the risk quantifier."""
    text = benchmark(render_severity_table, SeverityMatrix.paper_exponential())
    matrix = SeverityMatrix.paper_exponential()
    rows = matrix.as_rows()
    assert [row[2] for row in rows] == [64.0, 32.0, 16.0, 8.0, 4.0, 2.0]
    assert rows[0][:2] == ("hypo", "hyper")
    write_report("table1_severity", text)


def test_table2_vulnerability_clusters(benchmark, pipeline):
    """Table II: clusters recovered by the risk profiling framework."""
    assessment = pipeline.assessment

    def regenerate():
        return render_cluster_table(assessment)

    text = benchmark(regenerate)

    # The framework must partition the cohort into two non-empty groups and the
    # group labelled "less vulnerable" must have a lower mean attack success.
    rates = {
        index: rate
        for index, rate in assessment.cluster_success_rates.items()
        if not np.isnan(rate)
    }
    assert assessment.less_vulnerable and assessment.more_vulnerable
    if len(rates) == 2:
        less_cluster = assessment.cluster_of(assessment.less_vulnerable[0])
        other = next(index for index in rates if index != less_cluster)
        assert rates[less_cluster] <= rates[other]

    paper_less = set(expected_less_vulnerable_labels())
    recovered_less = set(assessment.less_vulnerable)
    overlap = len(paper_less & recovered_less)
    comparison = (
        f"Paper Table II less-vulnerable cluster : {sorted(paper_less)}\n"
        f"Framework-recovered less-vulnerable    : {sorted(recovered_less)}\n"
        f"Overlap                                : {overlap}/{len(paper_less)}"
    )
    write_report("table2_clusters", text + "\n\n" + comparison)
