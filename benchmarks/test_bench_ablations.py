"""Ablation benchmarks for the framework's design choices.

These go beyond the paper's evaluation and cover its stated future work:

* sensitivity of the risk profiles / clustering to the severity coefficients
  (exponential vs linear vs uniform),
* sensitivity of the vulnerability clusters to the clustering linkage, and
* the query cost of the different attack explorers.
"""

import numpy as np

from benchmarks.conftest import write_report
from repro.attacks import BeamExplorer, EvasionAttack, GreedyExplorer, RandomExplorer
from repro.glucose import Scenario
from repro.risk import (
    RiskProfileBuilder,
    RiskQuantifier,
    SeverityMatrix,
    cluster_profiles,
    profile_matrix,
)


def _cluster_assignment(campaign, severity, linkage="average"):
    profiles = RiskProfileBuilder(RiskQuantifier(severity)).from_campaign(campaign)
    labels, matrix = profile_matrix(profiles, length=48)
    outcome = cluster_profiles(labels, matrix, linkage=linkage, n_clusters=2)
    return outcome.as_dict()


def test_ablation_severity_coefficients(benchmark, pipeline):
    """How much do the vulnerability clusters depend on the severity choice?"""
    campaign = pipeline.train_campaign

    def regenerate():
        return {
            "exponential": _cluster_assignment(campaign, SeverityMatrix.paper_exponential()),
            "linear": _cluster_assignment(campaign, SeverityMatrix.linear()),
            "uniform": _cluster_assignment(campaign, SeverityMatrix.uniform()),
        }

    assignments = benchmark(regenerate)

    def agreement(first, second):
        labels = sorted(first)
        same = sum(
            1
            for a in labels
            for b in labels
            if a < b and (first[a] == first[b]) == (second[a] == second[b])
        )
        pairs = len(labels) * (len(labels) - 1) // 2
        return same / pairs

    lines = ["Cluster agreement (pairwise co-membership) vs paper's exponential coefficients"]
    for name in ("linear", "uniform"):
        score = agreement(assignments["exponential"], assignments[name])
        lines.append(f"  {name:>11}: {score:.2f}")
        assert 0.0 <= score <= 1.0
    write_report("ablation_severity", "\n".join(lines))


def test_ablation_clustering_linkage(benchmark, pipeline):
    """How stable are the clusters across linkage choices?"""
    campaign = pipeline.train_campaign
    severity = SeverityMatrix.paper_exponential()

    def regenerate():
        return {
            linkage: _cluster_assignment(campaign, severity, linkage)
            for linkage in ("single", "complete", "average", "ward")
        }

    assignments = benchmark(regenerate)
    lines = ["Less/more vulnerable split per linkage"]
    for linkage, assignment in assignments.items():
        groups = {}
        for label, cluster in assignment.items():
            groups.setdefault(cluster, []).append(label)
        rendered = " | ".join(",".join(sorted(members)) for members in groups.values())
        lines.append(f"  {linkage:>8}: {rendered}")
        assert len(groups) == 2
    write_report("ablation_linkage", "\n".join(lines))


def test_ablation_attack_explorers(benchmark, pipeline):
    """Success and query cost of greedy vs beam vs random exploration."""
    zoo = pipeline.zoo
    cohort = pipeline.cohort
    record = cohort["A_0"]
    windows, _, _ = zoo.dataset.from_record(record, "test")
    windows = windows[:: max(1, len(windows) // 20)][:20]
    predictor = zoo.model_for(record.label)

    explorers = {
        "greedy": GreedyExplorer(max_depth=3),
        "beam": BeamExplorer(beam_width=3, max_depth=3),
        "random": RandomExplorer(max_depth=3, n_walks=10, seed=0),
    }

    def regenerate():
        summary = {}
        for name, explorer in explorers.items():
            attack = EvasionAttack(predictor, explorer=explorer)
            results = [attack.attack_window(window, Scenario.POSTPRANDIAL) for window in windows]
            eligible = [result for result in results if result.eligible]
            summary[name] = {
                "success": float(np.mean([result.success for result in eligible])) if eligible else float("nan"),
                "queries": float(np.mean([result.queries for result in results])),
            }
        return summary

    summary = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    lines = ["Explorer ablation (20 windows of patient A_0, postprandial goal)"]
    for name, stats in summary.items():
        lines.append(
            f"  {name:>6}: success={stats['success']:.2f} mean_queries={stats['queries']:.1f}"
        )
    # Beam search is at least as successful as random walking on average.
    if not np.isnan(summary["beam"]["success"]) and not np.isnan(summary["random"]["success"]):
        assert summary["beam"]["success"] >= summary["random"]["success"] - 0.15
    write_report("ablation_explorers", "\n".join(lines))
