"""Setuptools entry point.

The pyproject.toml metadata is authoritative; this file exists so that legacy
``python setup.py develop`` installs work in offline environments that lack
the ``wheel`` package required by PEP 660 editable installs.
"""

from setuptools import setup

setup()
